//! The Content Addressable Network overlay (§3.1.1).
//!
//! Each node owns one or more zones of a d-dimensional torus. Routing is
//! greedy: forward to the neighbor whose zone is closest to the target
//! point. Joins split the zone containing a random point; failures are
//! detected by missed keepalives and repaired by neighbor takeover, with
//! the stored soft state lost (to be restored by publisher renewals,
//! §5.6).
//!
//! Takeover election: heartbeats carry the sender's *neighbor map* in
//! addition to its zones, so when a node dies all of its neighbors share
//! a (recent, consistent) candidate set and deterministically elect the
//! same claimant — smallest (volume, id) — avoiding most claim races.
//! Residual races are healed by the relinquish rule in
//! [`CanState::handle_takeover`].

use std::collections::BTreeMap;

use pier_simnet::time::Time;
use pier_simnet::{NodeId, Wire};

use crate::env::{send_metered, DhtEnv};
use crate::event::DhtEvent;
use crate::geom::{Point, Zone};
use crate::msg::{CanMsg, DhtMsg, Entry};
use crate::storage::StorageManager;
use crate::traffic::TrafficMeter;
use crate::DhtConfig;

/// What this node knows about one neighbor.
#[derive(Debug, Clone)]
pub struct NeighborInfo {
    pub zones: Vec<Zone>,
    pub last_seen: Time,
    /// The neighbor's own neighbor map, from its last heartbeat. This is
    /// the shared candidate set for takeover election when it fails.
    pub their_neighbors: Vec<(NodeId, Vec<Zone>)>,
}

impl NeighborInfo {
    pub fn new(zones: Vec<Zone>, last_seen: Time) -> Self {
        NeighborInfo {
            zones,
            last_seen,
            their_neighbors: Vec::new(),
        }
    }
}

/// Per-node CAN routing state.
#[derive(Debug, Clone)]
pub struct CanState {
    pub d: usize,
    pub me: NodeId,
    /// Zones currently owned (several after takeovers/absorbs).
    pub zones: Vec<Zone>,
    pub neighbors: BTreeMap<NodeId, NeighborInfo>,
    pub joined: bool,
    last_heartbeat: Time,
    /// Takeovers we are waiting on someone else to perform. If the
    /// elected claimant was itself a casualty (mass failure), we fall
    /// back down the candidate list so no zone stays orphaned.
    pending_claims: BTreeMap<NodeId, PendingClaim>,
}

#[derive(Debug, Clone)]
struct PendingClaim {
    zones: Vec<Zone>,
    /// Candidates ordered by (volume, id); index 0 was elected first.
    candidates: Vec<(u128, NodeId)>,
    attempt: usize,
    deadline: Time,
}

impl CanState {
    pub fn new(d: usize, me: NodeId) -> Self {
        assert!((1..=crate::geom::MAX_D).contains(&d));
        CanState {
            d,
            me,
            zones: Vec::new(),
            neighbors: BTreeMap::new(),
            joined: false,
            last_heartbeat: Time::ZERO,
            pending_claims: BTreeMap::new(),
        }
    }

    /// Become the first node of a new overlay: own the whole space.
    pub fn start_first(&mut self) {
        self.zones = vec![Zone::whole(self.d)];
        self.joined = true;
    }

    /// Install a precomputed zone + neighbor set (balanced bootstrap).
    pub fn install(&mut self, zones: Vec<Zone>, neighbors: BTreeMap<NodeId, NeighborInfo>) {
        self.zones = zones;
        self.neighbors = neighbors;
        self.joined = true;
    }

    /// Ask `bootstrap` to locate a random point for us to join at.
    pub fn start_join<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        bootstrap: NodeId,
    ) {
        let p = Point::from_key(env.rand64(), self.d);
        send_metered(
            env,
            meter,
            bootstrap,
            DhtMsg::Can(CanMsg::JoinLocate {
                joiner: self.me,
                p,
                ttl: crate::ROUTE_TTL,
            }),
        );
    }

    pub fn owns_point(&self, p: Point) -> bool {
        self.zones.iter().any(|z| z.contains(p, self.d))
    }

    /// Squared distance from our closest zone to `p`.
    pub fn min_dist2(&self, p: Point) -> u128 {
        self.zones
            .iter()
            .map(|z| z.dist2(p, self.d))
            .min()
            .unwrap_or(u128::MAX)
    }

    /// Greedy next hop: the neighbor whose zone is nearest to `p`
    /// (deterministic tie-break on node id).
    pub fn next_hop(&self, p: Point) -> Option<NodeId> {
        self.neighbors
            .iter()
            .map(|(&id, info)| {
                let dist = info
                    .zones
                    .iter()
                    .map(|z| z.dist2(p, self.d))
                    .min()
                    .unwrap_or(u128::MAX);
                (dist, id)
            })
            .min()
            .map(|(_, id)| id)
    }

    /// Total volume owned — the takeover tie-break metric (the smallest
    /// node absorbs the dead zone, which keeps the partition balanced).
    pub fn volume(&self) -> u128 {
        self.zones.iter().map(|z| z.volume(self.d)).sum()
    }

    /// Replica placement rule for CAN: up to `count` current neighbors,
    /// smallest node id first. Deterministic given the neighbor set, so
    /// the primary re-targets the same peers on every renewal and the
    /// replica set only drifts when the neighborhood itself changes
    /// (stale ex-replica copies then simply age out, §3.2.3).
    pub fn replica_peers(&self, count: usize) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        ids.sort_unstable();
        ids.truncate(count);
        ids
    }

    fn adjacent_to_mine(&self, zones: &[Zone]) -> bool {
        zones
            .iter()
            .any(|z| self.zones.iter().any(|m| m.is_neighbor(z, self.d)))
    }

    /// Integrate a zone announcement from `from`.
    pub fn handle_neighbor_update(&mut self, now: Time, from: NodeId, zones: Vec<Zone>) {
        self.integrate_announcement(now, from, zones, None);
    }

    /// Integrate a heartbeat (zones + the sender's neighbor map).
    pub fn handle_heartbeat(
        &mut self,
        now: Time,
        from: NodeId,
        zones: Vec<Zone>,
        their_neighbors: Vec<(NodeId, Vec<Zone>)>,
    ) {
        self.integrate_announcement(now, from, zones, Some(their_neighbors));
    }

    fn integrate_announcement(
        &mut self,
        now: Time,
        from: NodeId,
        zones: Vec<Zone>,
        their_neighbors: Option<Vec<(NodeId, Vec<Zone>)>>,
    ) {
        if from == self.me {
            return;
        }
        if self.adjacent_to_mine(&zones) {
            let entry = self
                .neighbors
                .entry(from)
                .or_insert_with(|| NeighborInfo::new(Vec::new(), now));
            entry.zones = zones;
            entry.last_seen = now;
            if let Some(tn) = their_neighbors {
                entry.their_neighbors = tn;
            }
        } else {
            self.neighbors.remove(&from);
        }
    }

    /// A joiner's chosen point landed in our zone: split it and hand half
    /// (plus the items it covers) to the joiner.
    pub fn handle_join_locate<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        store: &mut StorageManager<V>,
        joiner: NodeId,
        p: Point,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if joiner == self.me || !self.joined {
            return;
        }
        let Some(idx) = self.zones.iter().position(|z| z.contains(p, self.d)) else {
            return; // stale routing; the joiner will retry
        };
        let zone = self.zones[idx];
        let dim = zone.split_dim(self.d);
        if zone.hi[dim] - zone.lo[dim] < 2 {
            return; // cannot split further (never happens at sane scales)
        }
        let (a, b) = zone.split(dim);
        let (mine, theirs) = if a.contains(p, self.d) {
            (b, a)
        } else {
            (a, b)
        };
        self.zones[idx] = mine;

        // Hand off stored items no longer covered by our zones.
        let d = self.d;
        let zones = self.zones.clone();
        let items = store.extract_not_owned(|key| {
            let pt = Point::from_key(key, d);
            zones.iter().any(|z| z.contains(pt, d))
        });

        // Candidate neighbor set for the joiner: us plus our neighbors.
        let mut candidates: Vec<(NodeId, Vec<Zone>)> = vec![(self.me, self.zones.clone())];
        candidates.extend(
            self.neighbors
                .iter()
                .map(|(&id, info)| (id, info.zones.clone())),
        );
        send_metered(
            env,
            meter,
            joiner,
            DhtMsg::Can(CanMsg::JoinOffer {
                zone: theirs,
                neighbors: candidates,
                items,
            }),
        );

        // Announce our shrunken zone to everyone who knew the old one —
        // *before* pruning, so ex-neighbors drop us instead of holding a
        // stale entry that would later trigger a bogus takeover.
        let now = env.now();
        self.neighbors
            .insert(joiner, NeighborInfo::new(vec![theirs], now));
        self.announce(env, meter);
        let my_zones = self.zones.clone();
        let dd = self.d;
        self.neighbors.retain(|_, info| {
            info.zones
                .iter()
                .any(|z| my_zones.iter().any(|m| m.is_neighbor(z, dd)))
        });
        events.push(DhtEvent::LocationMapChanged);
    }

    /// We received our zone assignment: install it and introduce
    /// ourselves to the neighborhood.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_join_offer<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        store: &mut StorageManager<V>,
        zone: Zone,
        candidates: Vec<(NodeId, Vec<Zone>)>,
        items: Vec<Entry<V>>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if self.joined {
            return; // duplicate offer from a retried join
        }
        self.zones = vec![zone];
        self.joined = true;
        let now = env.now();
        for (id, zones) in candidates {
            if id != self.me && self.adjacent_to_mine(&zones) {
                self.neighbors.insert(id, NeighborInfo::new(zones, now));
            }
        }
        for e in items {
            // Transferred items are not "new data": they were already
            // announced at the previous owner.
            store.store(e);
        }
        self.announce(env, meter);
        events.push(DhtEvent::Joined);
        events.push(DhtEvent::LocationMapChanged);
    }

    /// Broadcast our current zone list to every neighbor.
    fn announce<V: Wire + Clone>(&self, env: &mut dyn DhtEnv<V>, meter: &mut TrafficMeter) {
        for &id in self.neighbors.keys() {
            send_metered(
                env,
                meter,
                id,
                DhtMsg::Can(CanMsg::NeighborUpdate {
                    zones: self.zones.clone(),
                }),
            );
        }
    }

    /// Another node claims a dead node's zones. Claim race backstop: if
    /// we also absorbed any of these zones and the other claimant has the
    /// smaller id, we relinquish ours.
    pub fn handle_takeover<V>(
        &mut self,
        now: Time,
        from: NodeId,
        dead: NodeId,
        zones: Vec<Zone>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        self.neighbors.remove(&dead);
        self.pending_claims.remove(&dead);
        if from != self.me && from < self.me {
            // Relinquish the *contested region* to the smaller id. Zone
            // shapes diverge after merges, so subtract intersections
            // rather than comparing boxes for equality.
            let mut changed = false;
            let mut kept: Vec<Zone> = Vec::with_capacity(self.zones.len());
            for z in self.zones.drain(..) {
                let mut parts = vec![z];
                for claimed in &zones {
                    let mut next = Vec::with_capacity(parts.len());
                    for part in parts {
                        match part.intersection(claimed, self.d) {
                            Some(overlap) => {
                                changed = true;
                                next.extend(part.subtract(&overlap, self.d));
                            }
                            None => next.push(part),
                        }
                    }
                    parts = next;
                }
                kept.extend(parts);
            }
            self.zones = kept;
            if changed {
                events.push(DhtEvent::LocationMapChanged);
            }
        }
        self.handle_neighbor_update(now, from, zones);
    }

    /// Graceful departure (Table 1 `leave()`): hand zones and items to
    /// the best neighbor (merge-compatible if possible, else smallest).
    pub fn leave<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        store: &mut StorageManager<V>,
    ) -> bool {
        let Some(target) = self.pick_leave_target() else {
            return false;
        };
        let items: Vec<Entry<V>> = store.extract_not_owned(|_| false);
        let neighbor_ids: Vec<NodeId> = self.neighbors.keys().copied().collect();
        send_metered(
            env,
            meter,
            target,
            DhtMsg::Can(CanMsg::Leave {
                zones: std::mem::take(&mut self.zones),
                items,
                neighbors: neighbor_ids.clone(),
            }),
        );
        // Tell everyone else we are gone (an empty-zones takeover makes
        // them drop us immediately instead of waiting out the keepalive).
        for id in neighbor_ids {
            if id != target {
                send_metered(
                    env,
                    meter,
                    id,
                    DhtMsg::Can(CanMsg::Takeover {
                        dead: self.me,
                        zones: Vec::new(),
                    }),
                );
            }
        }
        self.joined = false;
        self.neighbors.clear();
        true
    }

    fn pick_leave_target(&self) -> Option<NodeId> {
        // Prefer a neighbor with a zone that merges cleanly with one of
        // ours; otherwise the smallest-volume neighbor.
        if self.zones.len() == 1 {
            for (&id, info) in &self.neighbors {
                if info
                    .zones
                    .iter()
                    .any(|z| z.try_merge(&self.zones[0], self.d).is_some())
                {
                    return Some(id);
                }
            }
        }
        self.neighbors
            .iter()
            .map(|(&id, info)| {
                let v: u128 = info.zones.iter().map(|z| z.volume(self.d)).sum();
                (v, id)
            })
            .min()
            .map(|(_, id)| id)
    }

    /// Absorb a leaving neighbor's zones and items.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_leave<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        store: &mut StorageManager<V>,
        from: NodeId,
        zones: Vec<Zone>,
        items: Vec<Entry<V>>,
        leaver_neighbors: Vec<NodeId>,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        self.neighbors.remove(&from);
        self.absorb_zones(zones);
        for e in items {
            store.store(e);
        }
        // Announce to our neighborhood *and* the leaver's, so nodes on
        // the far side of the absorbed zone learn the new owner at once.
        let mut audience: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for id in leaver_neighbors {
            if id != self.me && id != from && !audience.contains(&id) {
                audience.push(id);
            }
        }
        for id in audience {
            send_metered(
                env,
                meter,
                id,
                DhtMsg::Can(CanMsg::NeighborUpdate {
                    zones: self.zones.clone(),
                }),
            );
        }
        events.push(DhtEvent::LocationMapChanged);
    }

    fn absorb_zones(&mut self, zones: Vec<Zone>) {
        for z in zones {
            // Merge with an existing zone when the union is a box.
            if let Some(i) = self
                .zones
                .iter()
                .position(|m| m.try_merge(&z, self.d).is_some())
            {
                let merged = self.zones[i].try_merge(&z, self.d).unwrap();
                self.zones[i] = merged;
            } else {
                self.zones.push(z);
            }
        }
    }

    /// Periodic maintenance: keepalives out, failure detection + takeover
    /// election in.
    pub fn tick<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        cfg: &DhtConfig,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if !self.joined || !cfg.maintenance {
            return;
        }
        let now = env.now();
        if now.since(self.last_heartbeat) >= cfg.keepalive {
            self.last_heartbeat = now;
            let neighbor_map: Vec<(NodeId, Vec<Zone>)> = self
                .neighbors
                .iter()
                .map(|(&id, info)| (id, info.zones.clone()))
                .collect();
            for &id in self.neighbors.keys() {
                send_metered(
                    env,
                    meter,
                    id,
                    DhtMsg::Can(CanMsg::Heartbeat {
                        zones: self.zones.clone(),
                        neighbors: neighbor_map.clone(),
                    }),
                );
            }
        }
        // Failure detection (the paper assumes 15 s, §5.6).
        let dead: Vec<(NodeId, NeighborInfo)> = self
            .neighbors
            .iter()
            .filter(|(_, info)| now.since(info.last_seen) > cfg.fail_after)
            .map(|(&id, info)| (id, info.clone()))
            .collect();
        for (dead_id, dead_info) in dead {
            self.neighbors.remove(&dead_id);
            // Elect the claimant over the *dead node's* neighbor set (its
            // last advertised map), which every surviving neighbor shares.
            let mut candidates: Vec<(u128, NodeId)> = vec![(self.volume(), self.me)];
            for (id, zones) in &dead_info.their_neighbors {
                if *id == dead_id || *id == self.me {
                    continue;
                }
                let v: u128 = zones.iter().map(|z| z.volume(self.d)).sum();
                candidates.push((v, *id));
            }
            candidates.sort_unstable();
            candidates.dedup_by_key(|&mut (_, id)| id);
            let dead_audience: Vec<NodeId> = dead_info
                .their_neighbors
                .iter()
                .map(|(id, _)| *id)
                .collect();
            if candidates[0].1 == self.me {
                self.claim(
                    env,
                    meter,
                    dead_id,
                    dead_info.zones.clone(),
                    &dead_audience,
                    events,
                );
            } else {
                // Someone else should claim; if they were a casualty too,
                // fall back down the list on a timer.
                self.pending_claims.insert(
                    dead_id,
                    PendingClaim {
                        zones: dead_info.zones.clone(),
                        candidates,
                        attempt: 0,
                        deadline: now + cfg.keepalive + cfg.keepalive,
                    },
                );
            }
        }
        // Fallback: elected claimants that never announced.
        let expired: Vec<NodeId> = self
            .pending_claims
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for dead_id in expired {
            let mut p = self.pending_claims.remove(&dead_id).unwrap();
            p.attempt += 1;
            match p.candidates.get(p.attempt).copied() {
                Some((_, id)) if id == self.me => {
                    let audience: Vec<NodeId> = p.candidates.iter().map(|&(_, id)| id).collect();
                    self.claim(env, meter, dead_id, p.zones.clone(), &audience, events);
                }
                Some(_) => {
                    p.deadline = now + cfg.keepalive + cfg.keepalive;
                    self.pending_claims.insert(dead_id, p);
                }
                // List exhausted: claim it ourselves as a last resort.
                None => {
                    let audience: Vec<NodeId> = p.candidates.iter().map(|&(_, id)| id).collect();
                    self.claim(env, meter, dead_id, p.zones.clone(), &audience, events);
                }
            }
        }
    }

    /// Absorb a dead node's zones and announce the takeover to everyone
    /// who might care (our neighbors plus the dead node's).
    fn claim<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        dead_id: NodeId,
        zones: Vec<Zone>,
        extra_audience: &[NodeId],
        events: &mut Vec<DhtEvent<V>>,
    ) {
        self.absorb_zones(zones);
        events.push(DhtEvent::LocationMapChanged);
        let mut audience: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for &id in extra_audience {
            if id != self.me && id != dead_id && !audience.contains(&id) {
                audience.push(id);
            }
        }
        for id in audience {
            send_metered(
                env,
                meter,
                id,
                DhtMsg::Can(CanMsg::Takeover {
                    dead: dead_id,
                    zones: self.zones.clone(),
                }),
            );
        }
    }
}

/// Recursively bisect the space into `n` balanced zones.
pub fn balanced_zones(n: usize, d: usize) -> Vec<Zone> {
    assert!(n >= 1);
    let mut zones = vec![Zone::whole(d)];
    // Always split the largest zone next; deterministic order.
    while zones.len() < n {
        let (idx, _) = zones
            .iter()
            .enumerate()
            .max_by_key(|(i, z)| (z.volume(d), usize::MAX - i))
            .unwrap();
        let z = zones[idx];
        let (a, b) = z.split(z.split_dim(d));
        zones[idx] = a;
        zones.push(b);
    }
    zones
}

/// Build a stabilized n-node overlay directly: node i owns zone i, with
/// neighbor tables precomputed. Used by large-scale experiments, since
/// "all measurements are performed after the CAN routing stabilizes"
/// (§5.2). The incremental join path is exercised by tests and the churn
/// experiment.
pub fn balanced_overlay(n: usize, d: usize, now: Time) -> Vec<CanState> {
    let zones = balanced_zones(n, d);
    let mut states: Vec<CanState> = (0..n)
        .map(|i| {
            let mut s = CanState::new(d, i as NodeId);
            s.zones = vec![zones[i]];
            s.joined = true;
            s
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if zones[i].is_neighbor(&zones[j], d) {
                states[i]
                    .neighbors
                    .insert(j as NodeId, NeighborInfo::new(vec![zones[j]], now));
                states[j]
                    .neighbors
                    .insert(i as NodeId, NeighborInfo::new(vec![zones[i]], now));
            }
        }
    }
    // Populate second-hop maps so takeover election works from t=0.
    let maps: Vec<Vec<(NodeId, Vec<Zone>)>> = states
        .iter()
        .map(|s| {
            s.neighbors
                .iter()
                .map(|(&id, info)| (id, info.zones.clone()))
                .collect()
        })
        .collect();
    for s in &mut states {
        for (id, info) in s.neighbors.iter_mut() {
            info.their_neighbors = maps[*id as usize].clone();
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RecordingEnv;
    use crate::geom::SPACE;
    use pier_simnet::time::Dur;

    type V = Vec<u8>;

    #[test]
    fn first_node_owns_everything() {
        let mut c = CanState::new(4, 0);
        c.start_first();
        for k in 0..100 {
            assert!(c.owns_point(Point::from_key(k, 4)));
        }
    }

    #[test]
    fn join_locate_splits_and_offers_half() {
        let mut owner = CanState::new(2, 0);
        owner.start_first();
        let mut env: RecordingEnv<V> = RecordingEnv::new(0);
        let mut meter = TrafficMeter::default();
        let mut store: StorageManager<V> = StorageManager::new();
        // Seed items on both sides of the future split (dim 0 halves).
        for k in 0..200u64 {
            let key = crate::geom::splitmix64(k);
            store.store(Entry {
                ns: 1,
                rid: k,
                iid: 0,
                key,
                expires: Time(u64::MAX),
                val: vec![],
            });
        }
        let total = store.len();
        let p = Point::from_key(12345, 2);
        let mut events = Vec::new();
        owner.handle_join_locate(&mut env, &mut meter, &mut store, 7, p, &mut events);

        assert_eq!(owner.zones.len(), 1);
        assert!(!owner.owns_point(p), "point side went to the joiner");
        assert!(owner.neighbors.contains_key(&7));
        // The offer carries the complementary half and the items in it.
        let offer = env
            .sent
            .iter()
            .find_map(|(to, m)| match m {
                DhtMsg::Can(CanMsg::JoinOffer { zone, items, .. }) if *to == 7 => {
                    Some((*zone, items.len()))
                }
                _ => None,
            })
            .expect("join offer sent");
        assert!(offer.0.contains(p, 2));
        assert_eq!(offer.1 + store.len(), total);
        assert!(offer.1 > 0, "some items moved");
        // Remaining items are all inside the kept zone.
        assert!(store
            .iter_all()
            .all(|e| owner.owns_point(Point::from_key(e.key, 2))));
    }

    #[test]
    fn join_offer_installs_zone_and_introduces() {
        let mut joiner = CanState::new(2, 7);
        let mut env: RecordingEnv<V> = RecordingEnv::new(7);
        let mut meter = TrafficMeter::default();
        let mut store: StorageManager<V> = StorageManager::new();
        let whole = Zone::whole(2);
        let (a, b) = whole.split(0);
        let mut events = Vec::new();
        joiner.handle_join_offer(
            &mut env,
            &mut meter,
            &mut store,
            b,
            vec![(0, vec![a])],
            vec![Entry {
                ns: 1,
                rid: 9,
                iid: 0,
                key: 3,
                expires: Time(u64::MAX),
                val: vec![1, 2],
            }],
            &mut events,
        );
        assert!(joiner.joined);
        assert_eq!(joiner.zones, vec![b]);
        assert!(joiner.neighbors.contains_key(&0));
        assert_eq!(store.len(), 1);
        assert!(events.iter().any(|e| matches!(e, DhtEvent::Joined)));
        assert!(env
            .sent
            .iter()
            .any(|(to, m)| *to == 0 && matches!(m, DhtMsg::Can(CanMsg::NeighborUpdate { .. }))));
    }

    #[test]
    fn neighbor_update_prunes_non_adjacent() {
        let mut c = CanState::new(2, 0);
        c.start_first();
        let (a, b) = Zone::whole(2).split(0);
        c.zones = vec![a];
        c.handle_neighbor_update(Time(1), 5, vec![b]);
        assert!(c.neighbors.contains_key(&5));
        // A faraway sliver not adjacent to us: neighbor dropped.
        let mut far = b;
        far.lo[0] = b.lo[0] + SPACE / 8;
        far.hi[0] = b.lo[0] + SPACE / 4;
        far.lo[1] = 0;
        far.hi[1] = SPACE / 4;
        c.handle_neighbor_update(Time(2), 5, vec![far]);
        assert!(!c.neighbors.contains_key(&5));
    }

    #[test]
    fn split_announces_to_soon_to_be_ex_neighbors() {
        // Node 0 owns the left half; node 5 owns the right half; node 0
        // splits its zone for joiner 7. Whatever 5's adjacency ends up
        // being, it must receive a NeighborUpdate reflecting the split.
        let whole = Zone::whole(2);
        let (left, right) = whole.split(0);
        let mut c = CanState::new(2, 0);
        c.zones = vec![left];
        c.joined = true;
        c.neighbors
            .insert(5, NeighborInfo::new(vec![right], Time(0)));
        let mut env: RecordingEnv<V> = RecordingEnv::new(0);
        let mut meter = TrafficMeter::default();
        let mut store: StorageManager<V> = StorageManager::new();
        let mut events = Vec::new();
        // Pick a point in the left half to force a split of our zone.
        let mut p = Point { c: [0; 8] };
        p.c[0] = 1;
        p.c[1] = 1;
        c.handle_join_locate(&mut env, &mut meter, &mut store, 7, p, &mut events);
        let updated: Vec<NodeId> = env
            .sent
            .iter()
            .filter_map(|(to, m)| match m {
                DhtMsg::Can(CanMsg::NeighborUpdate { .. }) => Some(*to),
                _ => None,
            })
            .collect();
        assert!(updated.contains(&5), "old neighbor notified: {updated:?}");
    }

    #[test]
    fn tick_detects_failure_and_takes_over() {
        let cfg = DhtConfig::default();
        let (a, b) = Zone::whole(2).split(0);
        let mut c = CanState::new(2, 0);
        c.zones = vec![a];
        c.joined = true;
        let mut info = NeighborInfo::new(vec![b], Time::ZERO);
        info.their_neighbors = vec![(0, vec![a])];
        c.neighbors.insert(1, info);
        let mut env: RecordingEnv<V> = RecordingEnv::new(0);
        env.now = Time::ZERO + cfg.fail_after + Dur::from_secs(1);
        let mut meter = TrafficMeter::default();
        let mut events = Vec::new();
        c.tick(&mut env, &mut meter, &cfg, &mut events);
        assert!(!c.neighbors.contains_key(&1));
        // We absorbed the dead zone; zones merged back to the whole space.
        assert_eq!(c.zones, vec![Zone::whole(2)]);
        assert!(events
            .iter()
            .any(|e| matches!(e, DhtEvent::LocationMapChanged)));
        assert!(meter.maintenance > 0);
    }

    #[test]
    fn takeover_election_is_consistent_across_observers() {
        // Several nodes around a dead one; all share the dead node's
        // advertised neighbor map, so exactly one should claim.
        let d = 2;
        let zones = balanced_zones(4, d);
        let dead_id: NodeId = 3;
        let dead_zone = zones[3];
        let shared_map: Vec<(NodeId, Vec<Zone>)> = (0..3u32)
            .filter(|&i| dead_zone.is_neighbor(&zones[i as usize], d))
            .map(|i| (i, vec![zones[i as usize]]))
            .collect();
        assert!(shared_map.len() >= 2, "need at least two candidates");
        let cfg = DhtConfig::default();
        let mut claims = 0;
        for me in 0..3u32 {
            if !dead_zone.is_neighbor(&zones[me as usize], d) {
                continue;
            }
            let mut c = CanState::new(d, me);
            c.zones = vec![zones[me as usize]];
            c.joined = true;
            let mut info = NeighborInfo::new(vec![dead_zone], Time::ZERO);
            info.their_neighbors = shared_map.clone();
            c.neighbors.insert(dead_id, info);
            let mut env: RecordingEnv<V> = RecordingEnv::new(me);
            env.now = Time::ZERO + cfg.fail_after + Dur::from_secs(1);
            let mut meter = TrafficMeter::default();
            let mut events = Vec::new();
            c.tick(&mut env, &mut meter, &cfg, &mut events);
            if c.zones.len() > 1 || c.zones[0] != zones[me as usize] {
                claims += 1;
            }
        }
        assert_eq!(claims, 1, "exactly one claimant");
    }

    #[test]
    fn heartbeats_sent_once_per_period() {
        let cfg = DhtConfig::default();
        let (a, b) = Zone::whole(2).split(0);
        let mut c = CanState::new(2, 0);
        c.zones = vec![a];
        c.joined = true;
        c.neighbors
            .insert(1, NeighborInfo::new(vec![b], Time::ZERO));
        let mut env: RecordingEnv<V> = RecordingEnv::new(0);
        let mut meter = TrafficMeter::default();
        let mut events = Vec::new();
        env.now = Time::ZERO + cfg.keepalive + Dur::from_millis(1);
        c.neighbors.get_mut(&1).unwrap().last_seen = env.now;
        c.tick(&mut env, &mut meter, &cfg, &mut events);
        let hb1 = env.sent.len();
        assert!(hb1 >= 1);
        // Immediately ticking again sends nothing new.
        c.tick(&mut env, &mut meter, &cfg, &mut events);
        assert_eq!(env.sent.len(), hb1);
    }

    #[test]
    fn balanced_zones_partition_exactly() {
        for n in [1usize, 2, 3, 7, 16, 33] {
            let zones = balanced_zones(n, 4);
            assert_eq!(zones.len(), n);
            let vol: u128 = zones.iter().map(|z| z.volume(4)).sum();
            assert_eq!(vol, Zone::whole(4).volume(4));
            for k in 0..200u64 {
                let p = Point::from_key(k * 77, 4);
                assert_eq!(zones.iter().filter(|z| z.contains(p, 4)).count(), 1);
            }
        }
    }

    #[test]
    fn balanced_overlay_routes_greedily_to_owner() {
        let n = 64;
        let states = balanced_overlay(n, 4, Time::ZERO);
        for key in 0..300u64 {
            let p = Point::from_key(key, 4);
            // Greedy walk from node 0 must reach the owner.
            let mut cur = 0usize;
            let mut hops = 0;
            loop {
                if states[cur].owns_point(p) {
                    break;
                }
                let nxt = states[cur].next_hop(p).expect("has neighbors");
                assert_ne!(nxt as usize, cur);
                cur = nxt as usize;
                hops += 1;
                assert!(hops < 64, "routing loop for key {key}");
            }
            // Owner is unique.
            assert_eq!(
                states.iter().filter(|s| s.owns_point(p)).count(),
                1,
                "key {key}"
            );
        }
    }

    #[test]
    fn balanced_overlay_average_path_scales_as_fourth_root() {
        // d=4: expected average path ~ N^(1/4) hops (§3.1.1).
        let mut avgs = Vec::new();
        for n in [16usize, 256] {
            let states = balanced_overlay(n, 4, Time::ZERO);
            let mut total = 0u64;
            let mut cnt = 0u64;
            for key in 0..200u64 {
                let p = Point::from_key(key.wrapping_mul(0x9E37), 4);
                let mut cur = (key as usize * 7) % n;
                let mut hops = 0u64;
                while !states[cur].owns_point(p) {
                    cur = states[cur].next_hop(p).unwrap() as usize;
                    hops += 1;
                    assert!(hops < 1000);
                }
                total += hops;
                cnt += 1;
            }
            avgs.push(total as f64 / cnt as f64);
        }
        // 256^(1/4)/16^(1/4) = 2: the larger net should need roughly
        // double the hops (loose bounds: 1.4–3×).
        let ratio = avgs[1] / avgs[0].max(0.1);
        assert!(ratio > 1.2 && ratio < 3.5, "ratio {ratio}, avgs {avgs:?}");
    }
}

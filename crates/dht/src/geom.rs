//! Geometry of the CAN coordinate space.
//!
//! CAN (§3.1.1) partitions a logical d-dimensional Cartesian torus into
//! hyper-rectangular *zones*, one owner per zone. Coordinates are 32-bit
//! per dimension; zone bounds are kept as `u64` in `[0, 2^32]` so that the
//! exclusive upper bound of the full space is representable. Zones are
//! produced only by bisection of the full space, so an individual zone
//! never wraps around the torus — but *adjacency* and *distance* are
//! toroidal.

/// Extent of each dimension: coordinates live in `[0, SPACE)`.
pub const SPACE: u64 = 1 << 32;

/// Maximum supported CAN dimensionality.
pub const MAX_D: usize = 8;

/// A point in the d-dimensional torus. Only the first `d` coordinates of
/// a deployment's configured dimensionality are meaningful.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Point {
    pub c: [u32; MAX_D],
}

impl Point {
    /// Derive the CAN point for a DHT key using d independent hash
    /// functions, one per dimension (paper, footnote 2).
    pub fn from_key(key: u64, d: usize) -> Point {
        let mut c = [0u32; MAX_D];
        for (i, ci) in c.iter_mut().enumerate().take(d) {
            *ci = (splitmix64(key ^ (0xA076_1D64_78BD_642F_u64.wrapping_mul(i as u64 + 1))) >> 32)
                as u32;
        }
        Point { c }
    }
}

/// Distance between two coordinates on the 2^32 circle.
#[inline]
pub fn circle_dist(a: u64, b: u64) -> u64 {
    let fwd = (a.wrapping_sub(b)) & (SPACE - 1);
    let bwd = (b.wrapping_sub(a)) & (SPACE - 1);
    fwd.min(bwd)
}

/// A zone: the half-open box `[lo, hi)` per dimension, `hi <= SPACE`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Zone {
    pub lo: [u64; MAX_D],
    pub hi: [u64; MAX_D],
}

impl Zone {
    /// The entire coordinate space for dimensionality `d`.
    pub fn whole(d: usize) -> Zone {
        let mut z = Zone {
            lo: [0; MAX_D],
            hi: [1; MAX_D], // degenerate in unused dims so volume stays sane
        };
        for i in 0..d {
            z.hi[i] = SPACE;
        }
        z
    }

    pub fn contains(&self, p: Point, d: usize) -> bool {
        (0..d).all(|i| {
            let c = p.c[i] as u64;
            self.lo[i] <= c && c < self.hi[i]
        })
    }

    /// Hyper-volume in *scaled units*: per-dimension extents are divided
    /// by `2^shift` with `shift` chosen so the whole space fits in u128.
    /// Zone extents produced by bisection are powers of two ≥ 2^shift at
    /// every realistic scale, so sums and comparisons remain exact.
    pub fn volume(&self, d: usize) -> u128 {
        let shift = Self::volume_shift(d);
        let mut v: u128 = 1;
        for i in 0..d {
            v = v.saturating_mul(((self.hi[i] - self.lo[i]) >> shift) as u128);
        }
        v
    }

    /// Per-dimension scaling exponent so `(2^(32-shift))^d < 2^127`.
    #[inline]
    fn volume_shift(d: usize) -> u32 {
        32u32.saturating_sub(126 / d as u32)
    }

    /// Center point of the zone.
    pub fn center(&self, d: usize) -> Point {
        let mut c = [0u32; MAX_D];
        for (i, ci) in c.iter_mut().enumerate().take(d) {
            *ci = ((self.lo[i] + self.hi[i]) / 2).min(SPACE - 1) as u32;
        }
        Point { c }
    }

    /// Squared toroidal L2 distance from `p` to the closest point of the
    /// zone (0 when `p` is inside). On a circle the nearest point of an
    /// arc to an outside point is one of the arc's endpoints.
    pub fn dist2(&self, p: Point, d: usize) -> u128 {
        let mut sum: u128 = 0;
        for i in 0..d {
            let c = p.c[i] as u64;
            if self.lo[i] <= c && c < self.hi[i] {
                continue;
            }
            let dd = circle_dist(c, self.lo[i]).min(circle_dist(c, self.hi[i] - 1));
            sum += (dd as u128) * (dd as u128);
        }
        sum
    }

    /// Dimension with the largest extent (lowest index on ties) — the
    /// dimension along which this zone will next be split. Splitting the
    /// longest side keeps zones square-ish, which keeps greedy routing
    /// efficient regardless of join order.
    pub fn split_dim(&self, d: usize) -> usize {
        let mut best = 0;
        let mut best_ext = 0u64;
        for i in 0..d {
            let ext = self.hi[i] - self.lo[i];
            if ext > best_ext {
                best_ext = ext;
                best = i;
            }
        }
        best
    }

    /// Bisect into (lower, upper) halves along `dim`.
    pub fn split(&self, dim: usize) -> (Zone, Zone) {
        debug_assert!(self.hi[dim] - self.lo[dim] >= 2, "zone too thin to split");
        let mid = self.lo[dim] + (self.hi[dim] - self.lo[dim]) / 2;
        let mut lower = *self;
        let mut upper = *self;
        lower.hi[dim] = mid;
        upper.lo[dim] = mid;
        (lower, upper)
    }

    /// Standard (non-toroidal) interval overlap in dimension `i`.
    #[inline]
    fn overlaps_dim(&self, other: &Zone, i: usize) -> bool {
        self.lo[i].max(other.lo[i]) < self.hi[i].min(other.hi[i])
    }

    /// Whether the intervals abut in dimension `i`, including across the
    /// torus seam (`SPACE` wraps to 0).
    #[inline]
    fn abuts_dim(&self, other: &Zone, i: usize) -> bool {
        (self.hi[i] % SPACE) == other.lo[i] || (other.hi[i] % SPACE) == self.lo[i]
    }

    /// CAN neighbor relation: the zones share a (d-1)-dimensional face —
    /// they abut in exactly one dimension and overlap in all others.
    pub fn is_neighbor(&self, other: &Zone, d: usize) -> bool {
        let mut abut_dims = 0;
        for i in 0..d {
            if self.overlaps_dim(other, i) {
                continue;
            }
            if self.abuts_dim(other, i) {
                abut_dims += 1;
                if abut_dims > 1 {
                    return false;
                }
            } else {
                return false;
            }
        }
        abut_dims == 1
    }

    /// Whether the zones overlap in every dimension (share interior).
    pub fn intersects(&self, other: &Zone, d: usize) -> bool {
        (0..d).all(|i| self.overlaps_dim(other, i))
    }

    /// Intersection box, if the zones intersect.
    pub fn intersection(&self, other: &Zone, d: usize) -> Option<Zone> {
        if !self.intersects(other, d) {
            return None;
        }
        let mut z = *self;
        for i in 0..d {
            z.lo[i] = self.lo[i].max(other.lo[i]);
            z.hi[i] = self.hi[i].min(other.hi[i]);
        }
        Some(z)
    }

    /// Guillotine decomposition of `self \ inner` into at most `2d`
    /// disjoint boxes. `inner` must be contained in `self`. Used by the
    /// multicast directed flood to hand unfinished space to sub-trees.
    pub fn subtract(&self, inner: &Zone, d: usize) -> Vec<Zone> {
        let mut out = Vec::with_capacity(2 * d);
        let mut cur = *self;
        for i in 0..d {
            if cur.lo[i] < inner.lo[i] {
                let mut slab = cur;
                slab.hi[i] = inner.lo[i];
                out.push(slab);
                cur.lo[i] = inner.lo[i];
            }
            if inner.hi[i] < cur.hi[i] {
                let mut slab = cur;
                slab.lo[i] = inner.hi[i];
                out.push(slab);
                cur.hi[i] = inner.hi[i];
            }
        }
        out
    }

    /// Whether two zones merge into a single box (same extent in all dims
    /// but one, where they abut without wrap). Returns the merged zone.
    pub fn try_merge(&self, other: &Zone, d: usize) -> Option<Zone> {
        let mut diff = None;
        for i in 0..d {
            if self.lo[i] == other.lo[i] && self.hi[i] == other.hi[i] {
                continue;
            }
            if diff.is_some() {
                return None;
            }
            if self.hi[i] == other.lo[i] || other.hi[i] == self.lo[i] {
                diff = Some(i);
            } else {
                return None;
            }
        }
        let i = diff?;
        let mut z = *self;
        z.lo[i] = self.lo[i].min(other.lo[i]);
        z.hi[i] = self.hi[i].max(other.hi[i]);
        Some(z)
    }
}

/// SplitMix64 — the workhorse hash for keys, points and ids.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash two 64-bit values into one (order-sensitive).
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a) ^ b.rotate_left(32))
}

/// Hash a string to a 64-bit id (FNV-1a).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const D: usize = 4;

    #[test]
    fn whole_space_contains_everything() {
        let z = Zone::whole(D);
        for key in 0..200u64 {
            assert!(z.contains(Point::from_key(key, D), D));
        }
        assert_eq!(z.volume(2), (SPACE as u128) * (SPACE as u128));
    }

    #[test]
    fn split_partitions_the_zone() {
        let z = Zone::whole(D);
        let dim = z.split_dim(D);
        assert_eq!(dim, 0); // all extents equal, lowest index wins
        let (a, b) = z.split(dim);
        assert_eq!(a.volume(D) + b.volume(D), z.volume(D));
        for key in 0..500u64 {
            let p = Point::from_key(key, D);
            assert!(a.contains(p, D) ^ b.contains(p, D));
        }
        assert!(a.is_neighbor(&b, D));
        assert!(b.is_neighbor(&a, D));
    }

    #[test]
    fn split_dim_cycles_round_the_dimensions() {
        // Repeated halving of the whole space visits dims 0,1,2,3,0,1,...
        let mut z = Zone::whole(D);
        for round in 0..8 {
            let dim = z.split_dim(D);
            assert_eq!(dim, round % D);
            z = z.split(dim).0;
        }
    }

    #[test]
    fn neighbor_relation_wraps_around_the_torus() {
        // Two slabs at opposite ends of dim 0.
        let mut a = Zone::whole(D);
        a.hi[0] = SPACE / 4;
        let mut b = Zone::whole(D);
        b.lo[0] = 3 * SPACE / 4;
        assert!(a.is_neighbor(&b, D), "abut across the seam");
        // Shrink b in dim 1 so they still overlap there: still neighbors.
        b.hi[1] = SPACE / 2;
        assert!(a.is_neighbor(&b, D));
        // Disjoint in dim 1 and abutting in dim 0 and dim 1: corner
        // contact only — not neighbors.
        let mut c = Zone::whole(D);
        c.lo[0] = 3 * SPACE / 4;
        c.lo[1] = SPACE / 2;
        let mut a2 = a;
        a2.hi[1] = SPACE / 2;
        assert!(!a2.is_neighbor(&c, D));
    }

    #[test]
    fn dist2_zero_inside_positive_outside() {
        let (a, b) = Zone::whole(D).split(0);
        let mut inside = Point { c: [0; MAX_D] };
        inside.c[0] = 1;
        assert_eq!(a.dist2(inside, D), 0);
        let mut outside = inside;
        outside.c[0] = (SPACE / 2 + 10) as u32;
        assert!(a.dist2(outside, D) > 0);
        assert_eq!(b.dist2(outside, D), 0);
    }

    #[test]
    fn circle_dist_is_symmetric_and_wraps() {
        assert_eq!(circle_dist(0, SPACE - 1), 1);
        assert_eq!(circle_dist(SPACE - 1, 0), 1);
        assert_eq!(circle_dist(10, 10), 0);
        assert_eq!(circle_dist(0, SPACE / 2), SPACE / 2);
    }

    #[test]
    fn subtract_covers_exactly_the_difference() {
        let outer = Zone::whole(2);
        let mut inner = outer;
        inner.lo[0] = SPACE / 4;
        inner.hi[0] = SPACE / 2;
        inner.lo[1] = SPACE / 8;
        inner.hi[1] = SPACE / 2;
        let parts = outer.subtract(&inner, 2);
        let vol: u128 = parts.iter().map(|z| z.volume(2)).sum();
        assert_eq!(vol + inner.volume(2), outer.volume(2));
        // Parts are pairwise disjoint and disjoint from inner.
        for (i, a) in parts.iter().enumerate() {
            assert!(!a.intersects(&inner, 2));
            for b in parts.iter().skip(i + 1) {
                assert!(!a.intersects(b, 2));
            }
        }
    }

    #[test]
    fn try_merge_restores_split() {
        let z = Zone::whole(D);
        let (a, b) = z.split(2);
        assert_eq!(a.try_merge(&b, D), Some(z));
        assert_eq!(b.try_merge(&a, D), Some(z));
        let (a1, _a2) = a.split(a.split_dim(D));
        assert_eq!(a1.try_merge(&b, D), None);
    }

    /// Build a random partition of the space by repeatedly splitting a
    /// random zone, mirroring how CAN joins carve the space.
    fn random_partition(n: usize, seed: u64, d: usize) -> Vec<Zone> {
        let mut zones = vec![Zone::whole(d)];
        let mut s = seed;
        while zones.len() < n {
            s = splitmix64(s);
            let idx = (s as usize) % zones.len();
            let z = zones[idx];
            let (a, b) = z.split(z.split_dim(d));
            zones[idx] = a;
            zones.push(b);
        }
        zones
    }

    proptest! {
        #[test]
        fn partition_is_exact_cover(n in 1usize..64, seed in any::<u64>(), key in any::<u64>()) {
            let zones = random_partition(n, seed, D);
            let p = Point::from_key(key, D);
            let owners = zones.iter().filter(|z| z.contains(p, D)).count();
            prop_assert_eq!(owners, 1);
            let vol: u128 = zones.iter().map(|z| z.volume(D)).sum();
            prop_assert_eq!(vol, Zone::whole(D).volume(D));
        }

        #[test]
        fn neighbor_relation_is_symmetric(n in 2usize..48, seed in any::<u64>()) {
            let zones = random_partition(n, seed, D);
            for i in 0..zones.len() {
                for j in 0..zones.len() {
                    prop_assert_eq!(
                        zones[i].is_neighbor(&zones[j], D),
                        zones[j].is_neighbor(&zones[i], D)
                    );
                }
            }
        }

        #[test]
        fn dist2_respects_containment(n in 1usize..48, seed in any::<u64>(), key in any::<u64>()) {
            let zones = random_partition(n, seed, D);
            let p = Point::from_key(key, D);
            for z in &zones {
                prop_assert_eq!(z.contains(p, D), z.dist2(p, D) == 0);
            }
        }

        #[test]
        fn subtract_never_overlaps(seed in any::<u64>()) {
            let zones = random_partition(16, seed, D);
            let whole = Zone::whole(D);
            for z in &zones {
                let parts = whole.subtract(z, D);
                let vol: u128 = parts.iter().map(|q| q.volume(D)).sum();
                prop_assert_eq!(vol + z.volume(D), whole.volume(D));
            }
        }

        #[test]
        fn point_from_key_is_deterministic(key in any::<u64>()) {
            prop_assert_eq!(Point::from_key(key, D), Point::from_key(key, D));
        }
    }
}

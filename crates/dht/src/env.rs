//! Environment abstraction decoupling the DHT from the hosting engine.
//!
//! The DHT layer never talks to an engine directly; it emits sends and
//! timers through [`DhtEnv`]. The query processor (pier-core) wraps its
//! own `Ctx<PierMsg>` in an adapter, and the test harness in this crate
//! wraps a bare `Ctx<DhtMsg<V>>`.

use crate::msg::DhtMsg;
use pier_simnet::app::Ctx;
use pier_simnet::time::{Dur, Time};
use pier_simnet::{NodeId, Wire};
use rand::Rng;

/// What the DHT needs from its host: a clock, an identity, a network,
/// timers, and randomness.
pub trait DhtEnv<V> {
    fn now(&self) -> Time;
    fn me(&self) -> NodeId;
    fn send(&mut self, to: NodeId, msg: DhtMsg<V>);
    fn timer(&mut self, after: Dur, token: u64);
    fn rand64(&mut self) -> u64;
}

/// Send a message through the environment, charging the sender-side
/// [`crate::traffic::TrafficMeter`].
pub fn send_metered<V: Wire>(
    env: &mut dyn DhtEnv<V>,
    meter: &mut crate::traffic::TrafficMeter,
    to: NodeId,
    msg: DhtMsg<V>,
) {
    meter.record(&msg);
    env.send(to, msg);
}

/// An environment that records everything — for unit tests of protocol
/// handlers (also used by pier-core's tests).
pub struct RecordingEnv<V> {
    pub now: Time,
    pub me: NodeId,
    pub sent: Vec<(NodeId, DhtMsg<V>)>,
    pub timers: Vec<(Dur, u64)>,
    pub seed: u64,
}

impl<V> RecordingEnv<V> {
    pub fn new(me: NodeId) -> Self {
        RecordingEnv {
            now: Time::ZERO,
            me,
            sent: Vec::new(),
            timers: Vec::new(),
            seed: 0x5EED,
        }
    }
}

impl<V> DhtEnv<V> for RecordingEnv<V> {
    fn now(&self) -> Time {
        self.now
    }
    fn me(&self) -> NodeId {
        self.me
    }
    fn send(&mut self, to: NodeId, msg: DhtMsg<V>) {
        self.sent.push((to, msg));
    }
    fn timer(&mut self, after: Dur, token: u64) {
        self.timers.push((after, token));
    }
    fn rand64(&mut self) -> u64 {
        self.seed = crate::geom::splitmix64(self.seed);
        self.seed
    }
}

/// Adapter for hosts whose message type is exactly `DhtMsg<V>` (the DHT
/// test harness; PIER proper wraps `DhtMsg` in its own envelope).
pub struct CtxEnv<'a, 'b, V: Wire + Clone> {
    pub ctx: &'a mut Ctx<'b, DhtMsg<V>>,
}

impl<'a, 'b, V: Wire + Clone> DhtEnv<V> for CtxEnv<'a, 'b, V> {
    fn now(&self) -> Time {
        self.ctx.now
    }
    fn me(&self) -> NodeId {
        self.ctx.me
    }
    fn send(&mut self, to: NodeId, msg: DhtMsg<V>) {
        self.ctx.send(to, msg);
    }
    fn timer(&mut self, after: Dur, token: u64) {
        self.ctx.set_timer(after, token);
    }
    fn rand64(&mut self) -> u64 {
        self.ctx.rng.gen()
    }
}

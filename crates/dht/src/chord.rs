//! The Chord overlay (Stoica et al., SIGCOMM 2001).
//!
//! The paper validates PIER's DHT-agnostic design by also deploying over
//! Chord, "which required a fairly minimal integration effort" (§3.2). We
//! reproduce that: Chord plugs in behind the same routing-layer API as
//! CAN. 64-bit ring, finger tables, successor lists, periodic
//! stabilization, and a finger-tree broadcast standing in for CAN's
//! directed-flood multicast.

use std::collections::HashMap;

use pier_simnet::time::Time;
use pier_simnet::{NodeId, Wire};

use crate::env::{send_metered, DhtEnv};
use crate::event::DhtEvent;
use crate::geom::splitmix64;
use crate::msg::{ChordMsg, DhtMsg, FindPurpose};
use crate::traffic::TrafficMeter;
use crate::DhtConfig;

/// Number of finger-table entries (64-bit ring).
pub const FINGERS: usize = 64;
/// Successor-list length for failure resilience.
pub const SUCC_LIST: usize = 4;

/// Ring position of a node id.
pub fn ring_of_node(me: NodeId) -> u64 {
    splitmix64((me as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ 0x9E37_79B9)
}

/// Ring position of a DHT key.
pub fn ring_of_key(key: u64) -> u64 {
    splitmix64(key ^ 0x1234_5678_9ABC_DEF0)
}

/// `x ∈ (a, b]` on the ring; when `a == b` the interval is the whole ring.
#[inline]
pub fn in_open_closed(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        true
    } else if a < b {
        a < x && x <= b
    } else {
        x > a || x <= b
    }
}

/// `x ∈ (a, b)` on the ring.
#[inline]
pub fn in_open(a: u64, x: u64, b: u64) -> bool {
    if a == b {
        x != a
    } else if a < b {
        a < x && x < b
    } else {
        x > a || x < b
    }
}

/// Per-node Chord state.
#[derive(Debug, Clone)]
pub struct ChordState {
    pub me: NodeId,
    pub ring: u64,
    pub joined: bool,
    pub predecessor: Option<(u64, NodeId)>,
    pub successors: Vec<(u64, NodeId)>,
    pub fingers: Vec<Option<(u64, NodeId)>>,
    next_finger: usize,
    succ_last_seen: Time,
    pred_last_seen: Time,
}

impl ChordState {
    pub fn new(me: NodeId) -> Self {
        ChordState {
            me,
            ring: ring_of_node(me),
            joined: false,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; FINGERS],
            next_finger: 0,
            succ_last_seen: Time::ZERO,
            pred_last_seen: Time::ZERO,
        }
    }

    /// First node of a new ring.
    pub fn start_first(&mut self) {
        self.joined = true;
    }

    /// Ask `bootstrap` to find our successor.
    pub fn start_join<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        bootstrap: NodeId,
    ) {
        send_metered(
            env,
            meter,
            bootstrap,
            DhtMsg::Chord(ChordMsg::FindSucc {
                target: self.ring,
                token: 0,
                origin: self.me,
                purpose: FindPurpose::Join,
                ttl: crate::ROUTE_TTL,
            }),
        );
    }

    pub fn successor(&self) -> Option<(u64, NodeId)> {
        self.successors.first().copied()
    }

    /// Do we own ring position `pos`? True iff `pos ∈ (pred, me]`; with no
    /// predecessor recorded, a joined node conservatively claims the key
    /// (correct for the single-node ring; transient during stabilization).
    pub fn owns_pos(&self, pos: u64) -> bool {
        if !self.joined {
            return false;
        }
        match self.predecessor {
            None => true,
            Some((pring, _)) => in_open_closed(pring, pos, self.ring),
        }
    }

    /// Replica placement rule for Chord: the first `count` distinct
    /// entries of the successor list, the classic "store at the k-1
    /// successors" scheme — exactly the nodes whose ownership range will
    /// absorb ours if we fail, so a takeover finds the data already on
    /// the new owner (or one hop away).
    pub fn replica_peers(&self, count: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &(_, id) in &self.successors {
            if id != self.me && !out.contains(&id) {
                out.push(id);
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }

    /// The ring interval `(from, to]` this node currently owns — the
    /// anti-entropy repair scope after a predecessor failure widened it.
    pub fn owned_interval(&self) -> (u64, u64) {
        match self.predecessor {
            // No predecessor: a joined node claims the whole ring
            // (`in_open_closed` treats `from == to` as everything).
            None => (self.ring, self.ring),
            Some((pring, _)) => (pring, self.ring),
        }
    }

    /// Closest node strictly preceding `pos` among fingers + successors.
    pub fn closest_preceding(&self, pos: u64) -> Option<NodeId> {
        let mut best: Option<(u64, NodeId)> = None;
        let consider = self.fingers.iter().flatten().chain(self.successors.iter());
        for &(r, id) in consider {
            if id == self.me || !in_open(self.ring, r, pos) {
                continue;
            }
            // The best candidate is the one whose ring id is closest to
            // (but before) pos — i.e. maximal in (self.ring, pos).
            best = Some(match best {
                None => (r, id),
                Some((br, bid)) => {
                    if in_open(br, r, pos) {
                        (r, id)
                    } else {
                        (br, bid)
                    }
                }
            });
        }
        best.map(|(_, id)| id)
    }

    /// One routing decision for a FindSucc toward `target`:
    /// `Ok(owner)` if resolved here, `Err(next)` to forward.
    pub fn find_succ_step(&self, target: u64) -> Result<(u64, NodeId), NodeId> {
        if self.owns_pos(target) {
            return Ok((self.ring, self.me));
        }
        if let Some((sring, sid)) = self.successor() {
            if in_open_closed(self.ring, target, sring) {
                return Ok((sring, sid));
            }
        }
        match self.closest_preceding(target) {
            Some(next) => Err(next),
            // Nowhere better to go: hand to successor if any.
            None => match self.successor() {
                Some((_, sid)) if sid != self.me => Err(sid),
                _ => Ok((self.ring, self.me)),
            },
        }
    }

    /// Install the join result: our successor.
    pub fn complete_join<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        succ_ring: u64,
        succ: NodeId,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if self.joined {
            return;
        }
        self.joined = true;
        if succ != self.me {
            self.successors = vec![(succ_ring, succ)];
            self.succ_last_seen = env.now();
            send_metered(
                env,
                meter,
                succ,
                DhtMsg::Chord(ChordMsg::Notify { ring: self.ring }),
            );
        }
        events.push(DhtEvent::Joined);
        events.push(DhtEvent::LocationMapChanged);
    }

    /// `notify(x)`: x believes it might be our predecessor.
    pub fn handle_notify<V>(
        &mut self,
        now: Time,
        from: NodeId,
        from_ring: u64,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        let adopt = match self.predecessor {
            None => true,
            Some((pring, pid)) => pid == from || in_open(pring, from_ring, self.ring),
        };
        if adopt {
            let changed = self.predecessor.map(|(_, id)| id) != Some(from);
            self.predecessor = Some((from_ring, from));
            self.pred_last_seen = now;
            if changed {
                // Our owned range shrank: keys in (old_pred, new_pred]
                // now belong elsewhere (re-homed by the provider sweep).
                events.push(DhtEvent::LocationMapChanged);
            }
        }
        // A single-node ring learns of a second node: adopt as successor.
        if self.successors.is_empty() && from != self.me {
            self.successors = vec![(from_ring, from)];
            self.succ_last_seen = now;
        }
    }

    /// Stabilization reply from our successor.
    pub fn handle_neighborhood<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        from: NodeId,
        pred: Option<(u64, NodeId)>,
        succs: Vec<(u64, NodeId)>,
    ) {
        let now = env.now();
        if self.successor().map(|(_, id)| id) == Some(from) {
            self.succ_last_seen = now;
        }
        if let Some((sring, _sid)) = self.successor() {
            if let Some((pring, pid)) = pred {
                if pid != self.me && in_open(self.ring, pring, sring) {
                    // A closer successor exists.
                    self.successors.insert(0, (pring, pid));
                }
            }
        }
        // Extend our successor list with our successor's.
        let mut list = self.successors.clone();
        for s in succs {
            if s.1 != self.me {
                list.push(s);
            }
        }
        // Sort by ring distance after me, dedupe by node.
        list.sort_by_key(|&(r, _)| r.wrapping_sub(self.ring).wrapping_sub(1));
        list.dedup_by_key(|&mut (_, id)| id);
        let mut seen = std::collections::HashSet::new();
        list.retain(|&(_, id)| seen.insert(id));
        list.truncate(SUCC_LIST);
        self.successors = list;
        if let Some((_, sid)) = self.successor() {
            if sid != self.me {
                send_metered(
                    env,
                    meter,
                    sid,
                    DhtMsg::Chord(ChordMsg::Notify { ring: self.ring }),
                );
            }
        }
    }

    /// Record a finger-table lookup result.
    pub fn set_finger(&mut self, k: usize, ring: u64, id: NodeId) {
        if k < FINGERS {
            self.fingers[k] = Some((ring, id));
        }
    }

    /// Periodic stabilization: probe the successor, refresh one finger,
    /// expire silent neighbors.
    pub fn tick<V: Wire + Clone>(
        &mut self,
        env: &mut dyn DhtEnv<V>,
        meter: &mut TrafficMeter,
        cfg: &DhtConfig,
        events: &mut Vec<DhtEvent<V>>,
    ) {
        if !self.joined || !cfg.maintenance {
            return;
        }
        let now = env.now();
        // Successor failure: drop and promote the next in the list.
        if let Some((_, sid)) = self.successor() {
            if now.since(self.succ_last_seen) > cfg.fail_after {
                self.successors.remove(0);
                self.fingers.iter_mut().for_each(|f| {
                    if f.map(|(_, id)| id) == Some(sid) {
                        *f = None;
                    }
                });
                self.succ_last_seen = now;
                events.push(DhtEvent::LocationMapChanged);
            }
        }
        // Predecessor timeout widens our owned range until a new notify.
        if let Some((_, _pid)) = self.predecessor {
            if now.since(self.pred_last_seen) > cfg.fail_after {
                self.predecessor = None;
                events.push(DhtEvent::LocationMapChanged);
            }
        }
        if let Some((_, sid)) = self.successor() {
            if sid != self.me {
                send_metered(env, meter, sid, DhtMsg::Chord(ChordMsg::GetNeighborhood));
            }
        }
        // Refresh one finger per tick.
        let k = self.next_finger;
        self.next_finger = (self.next_finger + 1) % FINGERS;
        let target = self.ring.wrapping_add(1u64 << k);
        match self.find_succ_step(target) {
            Ok((r, id)) => self.set_finger(k, r, id),
            Err(next) => send_metered(
                env,
                meter,
                next,
                DhtMsg::Chord(ChordMsg::FindSucc {
                    target,
                    token: 0,
                    origin: self.me,
                    purpose: FindPurpose::Finger(k as u8),
                    ttl: crate::ROUTE_TTL,
                }),
            ),
        }
    }

    /// Children of the broadcast tree covering `(self.ring, limit)`:
    /// distinct known nodes in the interval, each assigned the sub-range
    /// up to the next child (El-Ansary et al. broadcast).
    pub fn broadcast_children(&self, limit: u64) -> Vec<(NodeId, u64)> {
        let mut nodes: Vec<(u64, NodeId)> = self
            .fingers
            .iter()
            .flatten()
            .chain(self.successors.iter())
            .copied()
            .filter(|&(r, id)| id != self.me && in_open(self.ring, r, limit))
            .collect();
        nodes.sort_by_key(|&(r, _)| r.wrapping_sub(self.ring).wrapping_sub(1));
        nodes.dedup_by_key(|&mut (_, id)| id);
        let mut seen = std::collections::HashSet::new();
        nodes.retain(|&(_, id)| seen.insert(id));
        let mut out = Vec::with_capacity(nodes.len());
        for (i, &(_r, id)) in nodes.iter().enumerate() {
            let child_limit = if i + 1 < nodes.len() {
                nodes[i + 1].0
            } else {
                limit
            };
            out.push((id, child_limit));
        }
        out
    }
}

/// Build a fully stabilized ring for `n` nodes (fast bootstrap for large
/// experiments; mirrors `can::balanced_overlay`).
pub fn balanced_chord_overlay(n: usize, now: Time) -> Vec<ChordState> {
    let mut order: Vec<(u64, NodeId)> = (0..n as NodeId).map(|i| (ring_of_node(i), i)).collect();
    order.sort_unstable();
    let pos_of: HashMap<NodeId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &(_, id))| (id, i))
        .collect();
    (0..n as NodeId)
        .map(|me| {
            let mut s = ChordState::new(me);
            s.joined = true;
            s.succ_last_seen = now;
            s.pred_last_seen = now;
            let i = pos_of[&me];
            if n > 1 {
                s.predecessor = Some(order[(i + n - 1) % n]);
                s.successors = (1..=SUCC_LIST.min(n - 1))
                    .map(|k| order[(i + k) % n])
                    .collect();
                for k in 0..FINGERS {
                    let target = s.ring.wrapping_add(1u64 << k);
                    // Successor of target in the sorted ring.
                    let j = order.partition_point(|&(r, _)| r < target) % n;
                    let cand = order[j];
                    if cand.1 != me {
                        s.fingers[k] = Some(cand);
                    }
                }
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_interval_predicates() {
        assert!(in_open_closed(10, 20, 30));
        assert!(in_open_closed(10, 30, 30));
        assert!(!in_open_closed(10, 10, 30));
        // Wrap-around.
        assert!(in_open_closed(u64::MAX - 5, 3, 10));
        assert!(!in_open_closed(u64::MAX - 5, u64::MAX - 6, 10));
        // Degenerate = full ring.
        assert!(in_open_closed(7, 1, 7));
        assert!(in_open(5, 6, 8));
        assert!(!in_open(5, 8, 8));
    }

    #[test]
    fn balanced_ring_owns_partition_exactly() {
        let n = 64;
        let states = balanced_chord_overlay(n, Time::ZERO);
        for key in 0..500u64 {
            let pos = ring_of_key(key);
            let owners = states.iter().filter(|s| s.owns_pos(pos)).count();
            assert_eq!(owners, 1, "key {key}");
        }
    }

    #[test]
    fn find_succ_step_converges_in_log_hops() {
        let n = 256;
        let states = balanced_chord_overlay(n, Time::ZERO);
        for key in 0..200u64 {
            let pos = ring_of_key(key * 31 + 7);
            let mut cur = (key as usize) % n;
            let mut hops = 0;
            let owner = loop {
                match states[cur].find_succ_step(pos) {
                    Ok((_, id)) => break id,
                    Err(next) => {
                        cur = next as usize;
                        hops += 1;
                        assert!(hops < 64, "too many hops");
                    }
                }
            };
            assert!(states[owner as usize].owns_pos(pos));
            assert!(hops <= 16, "O(log n) expected, got {hops}");
        }
    }

    #[test]
    fn broadcast_tree_covers_every_node_once() {
        let n = 128;
        let states = balanced_chord_overlay(n, Time::ZERO);
        // Start at node 0, cover the full ring.
        let mut delivered = vec![0usize; n];
        let mut stack = vec![(0 as NodeId, states[0].ring)]; // (node, limit)
        while let Some((node, limit)) = stack.pop() {
            delivered[node as usize] += 1;
            for (child, child_limit) in states[node as usize].broadcast_children(limit) {
                stack.push((child, child_limit));
            }
        }
        assert!(delivered.iter().all(|&c| c == 1), "{delivered:?}");
    }

    #[test]
    fn notify_adopts_closer_predecessor() {
        let mut s = ChordState::new(0);
        s.start_first();
        let mut ev: Vec<DhtEvent<Vec<u8>>> = Vec::new();
        let a = ring_of_node(1);
        s.handle_notify(Time(1), 1, a, &mut ev);
        assert_eq!(s.predecessor, Some((a, 1)));
        assert_eq!(s.successor(), Some((a, 1)));
        // A node strictly between a and us replaces the predecessor.
        let mut b_id = 2;
        let mut b = ring_of_node(b_id);
        let mut tries = 3;
        while !in_open(a, b, s.ring) {
            b_id = tries;
            b = ring_of_node(b_id);
            tries += 1;
        }
        s.handle_notify(Time(2), b_id, b, &mut ev);
        assert_eq!(s.predecessor, Some((b, b_id)));
        // A farther node does not.
        s.handle_notify(Time(3), 1, a, &mut ev);
        assert_eq!(s.predecessor, Some((b, b_id)));
    }

    #[test]
    fn owns_pos_honours_predecessor_range() {
        let states = balanced_chord_overlay(8, Time::ZERO);
        for s in &states {
            let (pring, _) = s.predecessor.unwrap();
            assert!(s.owns_pos(s.ring));
            assert!(!s.owns_pos(pring));
        }
    }
}

//! # pier-dht
//!
//! The DHT tier of PIER (Figure 1 of the paper): an overlay routing layer
//! ([CAN](can) by default, [Chord](chord) as the validation alternative),
//! a main-memory [storage manager](storage), and the
//! [provider](dht::Dht) that ties them together behind the
//! `put`/`get`/`renew`/`multicast`/`lscan`/`newData` API of Table 3.
//!
//! All state is *soft* (§3.2.3): items carry lifetimes, owners discard
//! them on expiry, and publishers are expected to `renew`. Node failures
//! therefore lose data only until the next renewal round — the behaviour
//! measured by Figure 6 of the paper.

pub mod can;
pub mod chord;
pub mod dht;
pub mod env;
pub mod event;
pub mod geom;
pub mod harness;
pub mod msg;
pub mod storage;
pub mod traffic;

pub use crate::dht::{Dht, Overlay};
pub use env::{CtxEnv, DhtEnv, RecordingEnv};
pub use event::DhtEvent;
pub use msg::{DhtMsg, Entry};
pub use storage::StorageManager;
pub use traffic::TrafficMeter;

use pier_simnet::time::Dur;

/// Namespace identifier: hash of the application namespace string; for
/// query processing each namespace corresponds to a relation (§3.2.3).
pub type Ns = u64;

/// ResourceID hash: by default the hash of a tuple's primary key, or of
/// the join-key values for rehashed tuples (§4.1).
pub type Rid = u64;

/// Routing TTL: far above any legitimate path length (a 10,000-node CAN
/// at d = 4 averages 10 hops), purely a loop/livelock backstop.
pub const ROUTE_TTL: u16 = 512;

/// Timer token reserved for the DHT maintenance tick.
pub const DHT_TICK_TOKEN: u64 = 0xD117_0000_0000_0001;

/// Which overlay a node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayKind {
    Can,
    Chord,
}

/// Routing key of an object: `hash(namespace, resourceID)` (§3.2.3).
pub fn key_of(ns: Ns, rid: Rid) -> u64 {
    geom::hash2(ns, rid)
}

/// Hash an application namespace string to its [`Ns`].
pub fn ns_of(name: &str) -> Ns {
    geom::hash_str(name)
}

/// DHT-layer configuration.
#[derive(Debug, Clone)]
pub struct DhtConfig {
    /// CAN dimensionality (paper: d = 4, giving N^(1/4) average hops).
    pub dims: usize,
    pub overlay: OverlayKind,
    /// Maintenance tick period.
    pub tick: Dur,
    /// Keepalive (heartbeat / stabilization) period.
    pub keepalive: Dur,
    /// Silence after which a neighbor is declared dead (paper: 15 s).
    pub fail_after: Dur,
    /// Master switch for background maintenance traffic; experiments on
    /// stabilized static networks turn it off to isolate query traffic.
    pub maintenance: bool,
    /// Re-issue unanswered lookups after this long.
    pub lookup_retry: Dur,
    /// Periodically move stored items whose keys we no longer own.
    pub rehome: bool,
    /// Soft-state replication factor: total live copies per item (the
    /// primary plus `replication - 1` replicas at neighboring zones /
    /// successors). The paper runs k = 1 — soft state lost on failure is
    /// simply re-published at the next renewal — and k = 1 preserves that
    /// behavior exactly; k > 1 trades replica traffic for recall under
    /// churn (the frontier measured by `exp_churn_slo`).
    pub replication: usize,
}

impl Default for DhtConfig {
    fn default() -> Self {
        DhtConfig {
            dims: 4,
            overlay: OverlayKind::Can,
            tick: Dur::from_millis(500),
            keepalive: Dur::from_secs(2),
            fail_after: Dur::from_secs(15),
            maintenance: true,
            lookup_retry: Dur::from_secs(4),
            rehome: true,
            replication: 1,
        }
    }
}

impl DhtConfig {
    /// Static-network profile: no heartbeats, no re-homing — used by the
    /// traffic/latency experiments on stabilized overlays.
    pub fn static_network() -> Self {
        DhtConfig {
            maintenance: false,
            rehome: false,
            ..Default::default()
        }
    }

    pub fn with_overlay(mut self, overlay: OverlayKind) -> Self {
        self.overlay = overlay;
        self
    }

    pub fn with_dims(mut self, dims: usize) -> Self {
        self.dims = dims;
        self
    }

    /// Set the replication factor (total copies per item, `k >= 1`).
    pub fn with_replication(mut self, k: usize) -> Self {
        self.replication = k.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_of_is_stable_and_spreads() {
        let k1 = key_of(ns_of("R"), 42);
        let k2 = key_of(ns_of("R"), 42);
        assert_eq!(k1, k2);
        assert_ne!(key_of(ns_of("R"), 1), key_of(ns_of("S"), 1));
        assert_ne!(key_of(ns_of("R"), 1), key_of(ns_of("R"), 2));
    }

    #[test]
    fn default_config_matches_paper_assumptions() {
        let cfg = DhtConfig::default();
        assert_eq!(cfg.dims, 4);
        assert_eq!(cfg.fail_after, Dur::from_secs(15));
        assert_eq!(cfg.overlay, OverlayKind::Can);
        // The paper keeps exactly one copy of each soft-state item.
        assert_eq!(cfg.replication, 1);
    }

    #[test]
    fn replication_builder_clamps_to_at_least_one() {
        assert_eq!(DhtConfig::default().with_replication(0).replication, 1);
        assert_eq!(DhtConfig::default().with_replication(3).replication, 3);
    }
}

//! Graceful departure (Table 1's `leave()`) and cross-cutting DHT
//! properties on the simulator.

use pier_dht::harness::{stabilized_can_sim, DhtNode};
use pier_dht::{ns_of, DhtConfig, DhtEvent};
use pier_simnet::time::Dur;
use pier_simnet::{NetConfig, NodeId, Sim};

type V = Vec<u8>;

#[test]
fn graceful_leave_hands_over_zones_and_items() {
    let n = 10;
    let mut sim: Sim<DhtNode<V>> =
        stabilized_can_sim(n, DhtConfig::default(), NetConfig::latency_only(77));
    let ns = ns_of("tbl");
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..60u64 {
            node.dht
                .put(&mut env, ns, rid, 0, vec![1], Dur::from_secs(3600), &mut ev);
        }
    });
    sim.run_for(Dur::from_secs(10));
    let total_before: usize = (0..n)
        .map(|i| sim.app(i as NodeId).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(total_before, 60);

    // Node 4 leaves gracefully: its zones and items are handed to a
    // neighbor, *not* lost (unlike a failure).
    let leaver = 4;
    let had = sim.app(leaver).unwrap().dht.store.ns_len(ns);
    sim.with_app(leaver, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        node.dht.leave(&mut env);
    });
    sim.run_for(Dur::from_secs(10));
    let _ = had;
    let total_after: usize = (0..n)
        .filter(|&i| i != leaver as usize)
        .map(|i| sim.app(i as NodeId).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(total_after, 60, "no items lost on graceful leave");
    // Every key has exactly one owner among the remaining nodes.
    for rid in 0..60u64 {
        let key = pier_dht::key_of(ns, rid);
        let owners = (0..n)
            .filter(|&i| i != leaver as usize)
            .filter(|&i| sim.app(i as NodeId).unwrap().dht.owns_key(key))
            .count();
        assert_eq!(owners, 1, "rid {rid}");
    }
    // Gets still work afterwards.
    sim.with_app(1, |node, ctx| {
        let now = ctx.now;
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..60u64 {
            node.dht.get(&mut env, ns, rid, rid, &mut ev);
        }
        for e in ev {
            node.events.push((now, e));
        }
    });
    sim.run_for(Dur::from_secs(15));
    let answered = sim
        .app(1)
        .unwrap()
        .events_where(|e| matches!(e, DhtEvent::GetResult { items, .. } if !items.is_empty()))
        .count();
    assert_eq!(answered, 60);
}

#[test]
fn mixed_churn_join_leave_fail_converges() {
    // Interleave joins, graceful leaves, and failures, then verify the
    // overlay converges to a clean partition.
    let cfg = DhtConfig {
        fail_after: Dur::from_secs(10),
        ..DhtConfig::default()
    };
    let mut sim: Sim<DhtNode<V>> = Sim::new(NetConfig::latency_only(3));
    sim.add_node(DhtNode::new(cfg.clone(), 0, None));
    for i in 1..8u32 {
        sim.add_node(DhtNode::new(cfg.clone(), i, Some(0)));
        sim.run_for(Dur::from_secs(3));
    }
    sim.run_for(Dur::from_secs(5));
    // One graceful leave, one crash, one late join.
    sim.with_app(3, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        node.dht.leave(&mut env);
    });
    sim.fail_node(3); // the process exits after leaving
    sim.run_for(Dur::from_secs(2));
    sim.fail_node(5);
    sim.run_for(Dur::from_secs(20)); // detection + takeover
    let late = sim.add_node(DhtNode::new(cfg.clone(), 8, Some(0)));
    sim.run_for(Dur::from_secs(20));

    assert!(sim.app(late).unwrap().dht.is_joined());
    for k in 0..120u64 {
        let key = pier_dht::key_of(ns_of("x"), k);
        let owners: Vec<u32> = (0..sim.node_count() as u32)
            .filter(|&i| sim.alive(i))
            .filter(|&i| sim.app(i).unwrap().dht.owns_key(key))
            .collect();
        assert_eq!(owners.len(), 1, "key {k}: owners {owners:?}");
    }
}

//! End-to-end DHT tests on the discrete-event simulator: join protocol,
//! lookup-then-direct put/get, multicast coverage, soft-state aging and
//! renewal, failure detection with takeover, and the Chord overlay.

use pier_dht::harness::{stabilized_can_sim, stabilized_chord_sim, DhtNode};
use pier_dht::{ns_of, DhtConfig, DhtEvent, OverlayKind};
use pier_simnet::time::Dur;
use pier_simnet::{NetConfig, NodeId, Sim};

type V = Vec<u8>;

// Small helper: the harness needs the Ctx re-export; go through CtxEnv.
#[allow(dead_code)]
trait Unused {}

fn cfg() -> DhtConfig {
    DhtConfig::default()
}

fn latency_only(seed: u64) -> NetConfig {
    NetConfig::latency_only(seed)
}

/// Grow an overlay by incremental joins through the real protocol.
fn grow_network(n: usize, seed: u64) -> Sim<DhtNode<V>> {
    let mut sim: Sim<DhtNode<V>> = Sim::new(latency_only(seed));
    sim.add_node(DhtNode::new(cfg(), 0, None));
    for i in 1..n {
        sim.add_node(DhtNode::new(cfg(), i as NodeId, Some(0)));
        // Let each join settle before the next (serial joins, like the
        // paper's setup phase).
        sim.run_for(Dur::from_secs(3));
    }
    sim.run_for(Dur::from_secs(10));
    sim
}

#[test]
fn serial_joins_partition_the_space() {
    let n = 12;
    let mut sim = grow_network(n, 1);
    // Every node joined.
    for i in 0..n {
        assert!(
            sim.app(i as NodeId).unwrap().dht.is_joined(),
            "node {i} joined"
        );
    }
    // Every key has exactly one owner.
    for k in 0..200u64 {
        let key = pier_dht::key_of(ns_of("t"), k);
        let owners = (0..n)
            .filter(|&i| sim.app(i as NodeId).unwrap().dht.owns_key(key))
            .count();
        assert_eq!(owners, 1, "key {k}");
    }
    sim.run_for(Dur::ZERO);
}

#[test]
fn put_routes_to_owner_and_get_finds_it() {
    let mut sim = grow_network(8, 2);
    let ns = ns_of("table");
    // Publish 50 items from node 3.
    sim.with_app(3, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..50u64 {
            node.dht.put(
                &mut env,
                ns,
                rid,
                0,
                vec![rid as u8],
                Dur::from_secs(600),
                &mut ev,
            );
        }
    });
    sim.run_for(Dur::from_secs(10));
    // All 50 items are stored somewhere, each at its key's owner.
    let total: usize = (0..8)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(total, 50);
    for i in 0..8u32 {
        let node = sim.app(i).unwrap();
        for e in node.dht.store.lscan(ns) {
            assert!(node.dht.owns_key(e.key), "item at node {i} is owned");
        }
    }
    // Gets from a different node return each item.
    sim.with_app(6, |node, ctx| {
        let now = ctx.now;
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..50u64 {
            node.dht.get(&mut env, ns, rid, rid, &mut ev);
        }
        for e in ev {
            node.events.push((now, e));
        }
    });
    sim.run_for(Dur::from_secs(10));
    let node = sim.app(6).unwrap();
    let mut got: Vec<u64> = node
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            DhtEvent::GetResult { token, items } if !items.is_empty() => Some(*token),
            _ => None,
        })
        .collect();
    got.sort_unstable();
    got.dedup();
    assert_eq!(got.len(), 50, "all gets answered with data");
}

#[test]
fn multicast_reaches_every_node_exactly_once() {
    for n in [1usize, 2, 5, 16, 40] {
        let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(n, cfg(), latency_only(3));
        sim.with_app(0, |node, ctx| {
            let now = ctx.now;
            let mut env = pier_dht::CtxEnv { ctx };
            let mut ev = Vec::new();
            node.dht.multicast(&mut env, vec![9, 9, 9], &mut ev);
            for e in ev {
                node.events.push((now, e));
            }
        });
        sim.run_for(Dur::from_secs(30));
        for i in 0..n {
            let deliveries = sim
                .app(i as NodeId)
                .unwrap()
                .events_where(|e| matches!(e, DhtEvent::Multicast { .. }))
                .count();
            assert_eq!(deliveries, 1, "n={n} node {i}");
        }
    }
}

#[test]
fn multicast_latency_grows_slowly_with_n() {
    // Depth of the directed flood ~ sum of shrinking greedy routes; the
    // paper reports ~3 s at 1024 nodes with 100 ms hops.
    let mut worst = Vec::new();
    for n in [64usize, 512] {
        let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(n, cfg(), latency_only(4));
        sim.with_app(0, |node, ctx| {
            let now = ctx.now;
            let mut env = pier_dht::CtxEnv { ctx };
            let mut ev = Vec::new();
            node.dht.multicast(&mut env, vec![1], &mut ev);
            for e in ev {
                node.events.push((now, e));
            }
        });
        sim.run_for(Dur::from_secs(60));
        let last = (0..n)
            .filter_map(|i| {
                sim.app(i as NodeId)
                    .unwrap()
                    .events_where(|e| matches!(e, DhtEvent::Multicast { .. }))
                    .map(|(t, _)| *t)
                    .next()
            })
            .max()
            .unwrap();
        worst.push(last.as_secs_f64());
    }
    assert!(worst[0] > 0.1, "multi-hop dissemination");
    assert!(worst[1] < 10.0, "512 nodes reached in {:.2}s", worst[1]);
    assert!(worst[1] / worst[0] < 4.0, "sub-linear growth: {worst:?}");
}

#[test]
fn soft_state_expires_without_renewal() {
    let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(8, cfg(), latency_only(5));
    let ns = ns_of("soft");
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..20u64 {
            node.dht
                .put(&mut env, ns, rid, 0, vec![1], Dur::from_secs(30), &mut ev);
        }
    });
    sim.run_for(Dur::from_secs(10));
    let live: usize = (0..8)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(live, 20);
    // After the lifetime passes, owners discard everything.
    sim.run_for(Dur::from_secs(40));
    let live: usize = (0..8)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(live, 0, "items aged out");
}

#[test]
fn renewal_keeps_items_alive_and_does_not_refire_newdata() {
    let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(6, cfg(), latency_only(6));
    let ns = ns_of("renewed");
    let put_all = |sim: &mut Sim<DhtNode<V>>| {
        sim.with_app(0, |node, ctx| {
            let mut env = pier_dht::CtxEnv { ctx };
            let mut ev = Vec::new();
            for rid in 0..10u64 {
                node.dht
                    .renew(&mut env, ns, rid, 7, vec![2], Dur::from_secs(25), &mut ev);
            }
        });
    };
    put_all(&mut sim);
    sim.run_for(Dur::from_secs(15));
    put_all(&mut sim); // renew before expiry
    sim.run_for(Dur::from_secs(15));
    put_all(&mut sim);
    sim.run_for(Dur::from_secs(15));
    let live: usize = (0..6)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(live, 10, "renewals kept items alive past 2 lifetimes");
    // newData fired exactly once per item across the whole network.
    let newdata: usize = (0..6)
        .map(|i| {
            sim.app(i)
                .unwrap()
                .events_where(|e| matches!(e, DhtEvent::NewData { .. }))
                .count()
        })
        .sum();
    assert_eq!(newdata, 10);
}

#[test]
fn node_failure_loses_items_until_republished() {
    let mut cfgd = cfg();
    cfgd.keepalive = Dur::from_secs(2);
    cfgd.fail_after = Dur::from_secs(15);
    let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(8, cfgd, latency_only(7));
    let ns = ns_of("churny");
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..40u64 {
            node.dht
                .put(&mut env, ns, rid, 0, vec![3], Dur::from_secs(3600), &mut ev);
        }
    });
    sim.run_for(Dur::from_secs(10));
    // Fail the node holding the most items.
    let victim = (1..8)
        .max_by_key(|&i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .unwrap();
    let lost = sim.app(victim).unwrap().dht.store.ns_len(ns);
    assert!(lost > 0);
    sim.fail_node(victim);
    sim.run_for(Dur::from_secs(30)); // detection (15 s) + takeover
    let live: usize = (0..8)
        .filter(|&i| i != victim)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(live, 40 - lost, "victim's items are gone (soft state)");
    // The dead zone was taken over: every key has exactly one live owner.
    for rid in 0..40u64 {
        let key = pier_dht::key_of(ns, rid);
        let owners = (0..8)
            .filter(|&i| i != victim)
            .filter(|&i| sim.app(i).unwrap().dht.owns_key(key))
            .count();
        assert_eq!(owners, 1, "rid {rid}");
    }
    // Republishing (the renewal loop) restores full coverage.
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..40u64 {
            node.dht
                .renew(&mut env, ns, rid, 0, vec![3], Dur::from_secs(3600), &mut ev);
        }
    });
    sim.run_for(Dur::from_secs(20));
    let live: usize = (0..8)
        .filter(|&i| i != victim)
        .map(|i| sim.app(i).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(live, 40, "renewals restored the lost items");
}

#[test]
fn chord_put_get_and_broadcast() {
    let n = 24;
    let cfgc = DhtConfig::default().with_overlay(OverlayKind::Chord);
    let mut sim: Sim<DhtNode<V>> = stabilized_chord_sim(n, cfgc, latency_only(8));
    let ns = ns_of("chordtab");
    sim.with_app(2, |node, ctx| {
        let now = ctx.now;
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..30u64 {
            node.dht
                .put(&mut env, ns, rid, 0, vec![5], Dur::from_secs(600), &mut ev);
        }
        node.dht.multicast(&mut env, vec![7], &mut ev);
        for e in ev {
            node.events.push((now, e));
        }
    });
    sim.run_for(Dur::from_secs(20));
    let total: usize = (0..n)
        .map(|i| sim.app(i as NodeId).unwrap().dht.store.ns_len(ns))
        .sum();
    assert_eq!(total, 30);
    // Items sit at their owners.
    for i in 0..n as NodeId {
        let node = sim.app(i).unwrap();
        for e in node.dht.store.lscan(ns) {
            assert!(node.dht.owns_key(e.key));
        }
    }
    // Broadcast reached everyone exactly once.
    for i in 0..n as NodeId {
        let c = sim
            .app(i)
            .unwrap()
            .events_where(|e| matches!(e, DhtEvent::Multicast { .. }))
            .count();
        assert_eq!(c, 1, "node {i}");
    }
    // Remote gets work.
    sim.with_app(9, |node, ctx| {
        let now = ctx.now;
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..30u64 {
            node.dht.get(&mut env, ns, rid, 1000 + rid, &mut ev);
        }
        for e in ev {
            node.events.push((now, e));
        }
    });
    sim.run_for(Dur::from_secs(20));
    let answered = sim
        .app(9)
        .unwrap()
        .events_where(|e| matches!(e, DhtEvent::GetResult { items, .. } if !items.is_empty()))
        .count();
    assert_eq!(answered, 30);
}

#[test]
fn chord_incremental_join_stabilizes() {
    let cfgc = DhtConfig::default().with_overlay(OverlayKind::Chord);
    let mut sim: Sim<DhtNode<V>> = Sim::new(latency_only(9));
    sim.add_node(DhtNode::new(cfgc.clone(), 0, None));
    for i in 1..8 {
        sim.add_node(DhtNode::new(cfgc.clone(), i, Some(0)));
        sim.run_for(Dur::from_secs(5));
    }
    // Let stabilization + finger repair run.
    sim.run_for(Dur::from_secs(120));
    for i in 0..8u32 {
        let node = sim.app(i).unwrap();
        assert!(node.dht.is_joined(), "node {i}");
        let chord = node.dht.chord().unwrap();
        assert!(chord.successor().is_some() || i == 0);
        assert!(chord.predecessor.is_some(), "node {i} has a predecessor");
    }
    // Ring keys are uniquely owned.
    for k in 0..100u64 {
        let key = pier_dht::key_of(ns_of("x"), k);
        let owners = (0..8)
            .filter(|&i| sim.app(i).unwrap().dht.owns_key(key))
            .count();
        assert_eq!(owners, 1, "key {k}");
    }
}

#[test]
fn traffic_meter_separates_upkeep_from_data() {
    let mut sim: Sim<DhtNode<V>> = stabilized_can_sim(8, cfg(), latency_only(10));
    sim.run_for(Dur::from_secs(10)); // only heartbeats
    let upkeep: u64 = (0..8)
        .map(|i| sim.app(i).unwrap().dht.meter.maintenance)
        .sum();
    let data: u64 = (0..8).map(|i| sim.app(i).unwrap().dht.meter.data).sum();
    assert!(upkeep > 0);
    assert_eq!(data, 0);
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..20u64 {
            node.dht.put(
                &mut env,
                ns_of("d"),
                rid,
                0,
                vec![0; 512],
                Dur::from_secs(60),
                &mut ev,
            );
        }
    });
    sim.run_for(Dur::from_secs(10));
    let data: u64 = (0..8).map(|i| sim.app(i).unwrap().dht.meter.data).sum();
    assert!(data > 20 * 512, "puts counted as data traffic: {data}");
}

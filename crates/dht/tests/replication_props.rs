//! Property tests for soft-state replication under churn: random
//! kill schedules (seeded [`FaultScript::churn`]) against k ∈ {1, 2, 3},
//! on both engines.
//!
//! Invariants pinned here:
//!
//! * **Durability (k ≥ 2):** after every scripted failure has been
//!   detected, taken over, and repaired, every published item is still
//!   readable through the ordinary `get` path — some surviving replica
//!   answered the anti-entropy pull.
//! * **Exclusivity (any k):** each key has exactly one live owner, and
//!   exactly one *primary* copy network-wide — replicas never leak into
//!   primary stores of non-owners, so probes/lscan can never see an
//!   item twice.
//! * **No stale state (any k):** one sweep horizon after the last
//!   repair, no node's primary store holds an item whose key it does
//!   not own (anti-entropy + re-homing converged).

use pier_dht::harness::{stabilized_can_sim, DhtNode, DhtRequest};
use pier_dht::{ns_of, DhtConfig, DhtEvent, Ns};
use pier_simnet::time::{Dur, Time};
use pier_simnet::{Fault, FaultDriver, FaultScript, NetConfig, NodeId, Sim};
use proptest::prelude::*;

type V = Vec<u8>;

const N: usize = 10;
const ITEMS: u64 = 40;

fn churn_cfg(k: usize) -> DhtConfig {
    DhtConfig {
        keepalive: Dur::from_secs(1),
        fail_after: Dur::from_secs(5),
        ..DhtConfig::default()
    }
    .with_replication(k)
}

fn publish_all(sim: &mut Sim<DhtNode<V>>, ns: Ns) {
    sim.with_app(0, |node, ctx| {
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..ITEMS {
            node.dht.put(
                &mut env,
                ns,
                rid,
                0,
                vec![rid as u8],
                Dur::from_secs(3600),
                &mut ev,
            );
        }
    });
}

/// Run a seeded churn script (kills only, node 0 spared) to completion,
/// with enough settle after each fault for detection + takeover +
/// anti-entropy, and a final sweep horizon.
fn run_script(sim: &mut Sim<DhtNode<V>>, script: FaultScript) {
    let t0 = sim.now();
    let mut drv = FaultDriver::new(script);
    while let Some(at) = drv.next_at() {
        sim.run_until(t0 + at);
        drv.advance(sim.now().since(t0), |f| {
            if let Fault::Kill { node } = *f {
                sim.fail_node(node);
            }
        });
    }
    // Final failure: detection (5 s) + takeover + repair + one re-home
    // cycle + one expiry sweep.
    sim.run_for(Dur::from_secs(25));
}

/// Every rid resolved through `get` from node 0 with a non-empty reply.
fn all_readable(sim: &mut Sim<DhtNode<V>>, ns: Ns) -> usize {
    let before = sim
        .app(0)
        .unwrap()
        .events_where(|e| matches!(e, DhtEvent::GetResult { items, .. } if !items.is_empty()))
        .count();
    sim.with_app(0, |node, ctx| {
        let now = ctx.now;
        let mut env = pier_dht::CtxEnv { ctx };
        let mut ev = Vec::new();
        for rid in 0..ITEMS {
            node.dht.get(&mut env, ns, rid, 7000 + rid, &mut ev);
        }
        for e in ev {
            node.events.push((now, e));
        }
    });
    sim.run_for(Dur::from_secs(15));
    sim.app(0)
        .unwrap()
        .events_where(|e| matches!(e, DhtEvent::GetResult { items, .. } if !items.is_empty()))
        .count()
        - before
}

/// Audit ownership and primary-copy exclusivity; returns the number of
/// rids with exactly one live primary copy.
fn audit_exclusive(sim: &Sim<DhtNode<V>>, ns: Ns) -> usize {
    let now = sim.now();
    let alive: Vec<NodeId> = (0..N as NodeId).filter(|&i| sim.alive(i)).collect();
    let mut primary_copies = 0usize;
    for rid in 0..ITEMS {
        let key = pier_dht::key_of(ns, rid);
        let owners: Vec<NodeId> = alive
            .iter()
            .copied()
            .filter(|&i| sim.app(i).unwrap().dht.owns_key(key))
            .collect();
        assert_eq!(owners.len(), 1, "rid {rid}: owners {owners:?}");
        let holders = alive
            .iter()
            .copied()
            .filter(|&i| {
                sim.app(i)
                    .unwrap()
                    .dht
                    .store
                    .get(ns, rid)
                    .iter()
                    .any(|e| e.expires > now)
            })
            .count();
        assert!(holders <= 1, "rid {rid}: {holders} primary copies");
        primary_copies += holders;
    }
    // No stale primaries anywhere: every live primary entry is owned.
    for &i in &alive {
        let node = sim.app(i).unwrap();
        for e in node.dht.store.lscan(ns) {
            if e.expires > now {
                assert!(
                    node.dht.owns_key(e.key),
                    "node {i} holds rid {} but does not own its key",
                    e.rid
                );
            }
        }
    }
    primary_copies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random kill schedules, k ∈ {1, 2, 3}: exclusivity always holds;
    /// with k ≥ 2 every item survives and stays readable.
    #[test]
    fn churn_preserves_replicated_items(seed in any::<u64>(), k in 1usize..4) {
        let ns = ns_of("repl");
        let mut sim: Sim<DhtNode<V>> =
            stabilized_can_sim(N, churn_cfg(k), NetConfig::latency_only(seed));
        publish_all(&mut sim, ns);
        sim.run_for(Dur::from_secs(10));

        let candidates: Vec<NodeId> = (1..N as NodeId).collect();
        let script = FaultScript::churn(seed, Dur::from_secs(40), 2, &candidates);
        let killed = script.killed();
        run_script(&mut sim, script);
        for v in &killed {
            prop_assert!(!sim.alive(*v));
        }

        let primaries = audit_exclusive(&sim, ns);
        if k >= 2 {
            prop_assert_eq!(primaries, ITEMS as usize, "k={} lost items", k);
            let readable = all_readable(&mut sim, ns);
            prop_assert_eq!(readable, ITEMS as usize, "k={} unreadable items", k);
        } else {
            // k = 1 is the paper's soft-state baseline: items on the
            // killed nodes are simply gone until re-published.
            prop_assert!(primaries <= ITEMS as usize);
        }
    }
}

/// The same durability property on the wall-clock actor runtime: kill
/// a loaded node, wait out detection + takeover + anti-entropy, and
/// read everything back (k = 2).
#[test]
fn cluster_kill_heals_from_replicas() {
    let cfg = DhtConfig {
        keepalive: Dur::from_millis(500),
        fail_after: Dur::from_secs(2),
        ..DhtConfig::default()
    }
    .with_replication(2);
    let n = 8usize;
    let ns = ns_of("repl_cluster");
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<DhtNode<V>> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| DhtNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st)))
        .collect();
    let cluster = pier_simnet::Cluster::spawn(apps, 42);
    for rid in 0..30u64 {
        cluster.request(
            0,
            DhtRequest::Put {
                ns,
                rid,
                iid: 0,
                val: vec![1],
                lifetime: Dur::from_secs(3600),
            },
        );
    }
    std::thread::sleep(std::time::Duration::from_millis(1500));
    // Kill the most loaded non-querying node.
    let victim = (1..n as NodeId)
        .max_by_key(|&i| {
            cluster
                .request(i, DhtRequest::NsLen(ns))
                .map(|r| r.into_count())
        })
        .unwrap();
    let lost = cluster
        .request(victim, DhtRequest::NsLen(ns))
        .expect("victim alive before kill")
        .into_count();
    assert!(lost > 0, "victim must hold items for the test to bite");
    cluster.kill(victim);
    // Detection (2 s) + takeover + anti-entropy, wall clock.
    std::thread::sleep(std::time::Duration::from_millis(4500));
    for rid in 0..30u64 {
        cluster.request(
            0,
            DhtRequest::Get {
                ns,
                rid,
                token: rid,
            },
        );
    }
    std::thread::sleep(std::time::Duration::from_millis(1500));
    let answered = cluster
        .request(0, DhtRequest::NonEmptyGetResults)
        .expect("querying node alive")
        .into_count();
    cluster.shutdown();
    assert_eq!(answered, 30, "every item must survive the kill at k = 2");
}

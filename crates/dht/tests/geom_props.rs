//! Property tests for the CAN coordinate geometry: zone split/merge
//! round-trips must preserve exact torus coverage and keep the neighbor
//! relation symmetric — the invariants node join (split) and graceful
//! leave (merge) rely on.

use pier_dht::geom::{splitmix64, Point, Zone, MAX_D};
use proptest::prelude::*;

const D: usize = 4;

/// A random bisection partition of the space, mirroring CAN joins.
fn random_partition(n: usize, seed: u64, d: usize) -> Vec<Zone> {
    let mut zones = vec![Zone::whole(d)];
    let mut s = seed;
    while zones.len() < n {
        s = splitmix64(s);
        let idx = (s as usize) % zones.len();
        let z = zones[idx];
        let (a, b) = z.split(z.split_dim(d));
        zones[idx] = a;
        zones.push(b);
    }
    zones
}

fn total_volume(zones: &[Zone], d: usize) -> u128 {
    zones.iter().map(|z| z.volume(d)).sum()
}

fn point_of(key: u64) -> Point {
    Point::from_key(key, D)
}

proptest! {
    /// split() then try_merge() is the identity on any zone of any
    /// partition: the leave protocol can always undo the join protocol.
    #[test]
    fn split_then_merge_is_identity(n in 1usize..48, seed in any::<u64>()) {
        let zones = random_partition(n, seed, D);
        for z in &zones {
            let dim = z.split_dim(D);
            let (a, b) = z.split(dim);
            prop_assert_eq!(a.try_merge(&b, D), Some(*z));
            prop_assert_eq!(b.try_merge(&a, D), Some(*z));
            // The two halves are face-neighbors, symmetrically.
            prop_assert!(a.is_neighbor(&b, D) && b.is_neighbor(&a, D));
        }
    }

    /// Splitting one zone of a partition and merging it back preserves
    /// exact torus coverage: total volume, and single ownership of any
    /// probe point, at every step of the round-trip.
    #[test]
    fn split_merge_round_trip_preserves_coverage(
        n in 1usize..48,
        seed in any::<u64>(),
        key in any::<u64>(),
    ) {
        let mut zones = random_partition(n, seed, D);
        let whole_vol = Zone::whole(D).volume(D);
        let victim = (splitmix64(seed ^ 0xA5) as usize) % zones.len();
        let z = zones[victim];
        let (a, b) = z.split(z.split_dim(D));
        // After the split: still an exact cover.
        zones[victim] = a;
        zones.push(b);
        prop_assert_eq!(total_volume(&zones, D), whole_vol);
        let p = point_of(key);
        prop_assert_eq!(zones.iter().filter(|q| q.contains(p, D)).count(), 1);
        // After the merge: the original partition, exactly covered again.
        let b = zones.pop().unwrap();
        let merged = zones[victim].try_merge(&b, D).expect("halves re-merge");
        zones[victim] = merged;
        prop_assert_eq!(merged, z);
        prop_assert_eq!(total_volume(&zones, D), whole_vol);
        prop_assert_eq!(zones.iter().filter(|q| q.contains(p, D)).count(), 1);
    }

    /// Neighbor symmetry survives a split/merge round-trip: while the
    /// halves exist, each inherits neighbors consistently — for every
    /// pair of zones in the modified partition the relation stays
    /// symmetric, and any old neighbor of the parent neighbors at least
    /// one half.
    #[test]
    fn split_keeps_neighbor_relation_symmetric(n in 2usize..32, seed in any::<u64>()) {
        let mut zones = random_partition(n, seed, D);
        let victim = (splitmix64(seed ^ 0x5A) as usize) % zones.len();
        let parent = zones[victim];
        let old_neighbors: Vec<Zone> = zones
            .iter()
            .filter(|q| parent.is_neighbor(q, D))
            .copied()
            .collect();
        let (a, b) = parent.split(parent.split_dim(D));
        zones[victim] = a;
        zones.push(b);
        for i in 0..zones.len() {
            for j in 0..zones.len() {
                prop_assert_eq!(
                    zones[i].is_neighbor(&zones[j], D),
                    zones[j].is_neighbor(&zones[i], D)
                );
            }
        }
        for q in &old_neighbors {
            prop_assert!(
                a.is_neighbor(q, D) || b.is_neighbor(q, D),
                "a parent's neighbor must touch one half"
            );
        }
    }

    /// Unused dimensions stay degenerate through split/merge, so volumes
    /// computed at the deployment's dimensionality remain exact.
    #[test]
    fn split_never_touches_unused_dimensions(seed in any::<u64>()) {
        let zones = random_partition(16, seed, D);
        for z in &zones {
            for i in D..MAX_D {
                prop_assert_eq!(z.lo[i], 0);
                prop_assert_eq!(z.hi[i], 1);
            }
        }
    }
}

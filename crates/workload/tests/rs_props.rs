//! Regression tests pinning the PR-1 `gen_range` fix in the R/S
//! generator: the match-draw originally inferred `i32` against an `i64`
//! comparison, skewing the R→S match rate. These properties nail the
//! match-rate and the selectivity distributions across seeds and
//! parameter settings, so a type-inference regression (or any silent
//! distribution change) fails loudly.

use pier_workload::{RsParams, RsWorkload};

/// Fraction of R rows whose `num1` lands inside S's key range.
fn match_fraction(wl: &RsWorkload) -> f64 {
    let n_s = wl.s.len() as i64;
    let matched =
        wl.r.iter()
            .filter(|t| t.get(1).as_i64().unwrap() < n_s)
            .count();
    matched as f64 / wl.r.len() as f64
}

#[test]
fn match_rate_tracks_match_pct_across_seeds() {
    for seed in [1u64, 2, 77, 0xF1E1D] {
        for match_pct in [0u32, 50, 90, 100] {
            let wl = RsWorkload::generate(RsParams {
                s_rows: 400,
                match_pct,
                seed,
                ..Default::default()
            });
            let frac = match_fraction(&wl);
            let want = match_pct as f64 / 100.0;
            assert!(
                (frac - want).abs() < 0.04,
                "seed {seed} match_pct {match_pct}: fraction {frac}"
            );
        }
    }
}

#[test]
fn unmatched_r_rows_point_strictly_past_the_table() {
    // The 10% non-matching rows must reference keys in [n_s, 2*n_s) —
    // never negative, never accidentally inside the table (the failure
    // mode of a truncating integer draw).
    let wl = RsWorkload::generate(RsParams {
        s_rows: 300,
        match_pct: 0,
        seed: 9,
        ..Default::default()
    });
    let n_s = wl.s.len() as i64;
    for t in &wl.r {
        let num1 = t.get(1).as_i64().unwrap();
        assert!((n_s..2 * n_s).contains(&num1), "num1 {num1} out of range");
    }
}

#[test]
fn attribute_values_are_uniform_over_0_to_100() {
    // num2/num3 drive predicate selectivities, so their distribution is
    // load-bearing: check bounds and coarse uniformity per decile.
    let wl = RsWorkload::generate(RsParams {
        s_rows: 1000,
        seed: 5,
        ..Default::default()
    });
    let mut deciles = [0usize; 10];
    for t in &wl.r {
        for col in [2, 3] {
            let v = t.get(col).as_i64().unwrap();
            assert!((0..100).contains(&v), "attribute {v} out of range");
            if col == 2 {
                deciles[(v / 10) as usize] += 1;
            }
        }
    }
    let expect = wl.r.len() as f64 / 10.0;
    for (i, &n) in deciles.iter().enumerate() {
        let dev = (n as f64 - expect).abs() / expect;
        assert!(dev < 0.15, "decile {i} off by {dev:.2}");
    }
}

#[test]
fn predicate_selectivity_matches_dialed_percentages() {
    use pier_core::plan::JoinStrategy;
    for (sel_r, sel_s) in [(10u32, 90u32), (25, 50), (75, 25)] {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 800,
            sel_r_pct: sel_r,
            sel_s_pct: sel_s,
            seed: 11,
            ..Default::default()
        });
        let j = wl.join_spec(JoinStrategy::SymmetricHash);
        let frac_r =
            wl.r.iter()
                .filter(|t| j.left.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.r.len() as f64;
        let frac_s =
            wl.s.iter()
                .filter(|t| j.right.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.s.len() as f64;
        assert!(
            (frac_r - sel_r as f64 / 100.0).abs() < 0.05,
            "sel_r {sel_r}: {frac_r}"
        );
        assert!(
            (frac_s - sel_s as f64 / 100.0).abs() < 0.05,
            "sel_s {sel_s}: {frac_s}"
        );
    }
}

#[test]
fn expected_join_size_scales_with_match_rate() {
    use pier_core::plan::JoinStrategy;
    // End-to-end consequence of the fixed draw: doubling match_pct
    // roughly doubles the reference result, all else fixed.
    let gen = |match_pct| {
        RsWorkload::generate(RsParams {
            s_rows: 500,
            match_pct,
            seed: 3,
            ..Default::default()
        })
        .expected(JoinStrategy::SymmetricHash)
        .len() as f64
    };
    let lo = gen(45);
    let hi = gen(90);
    assert!(lo > 0.0);
    let ratio = hi / lo;
    assert!((ratio - 2.0).abs() < 0.35, "ratio {ratio}");
}

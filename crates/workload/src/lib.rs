//! # pier-workload
//!
//! Synthetic data generators for the PIER evaluation.
//!
//! [`rs::RsWorkload`] reproduces §5.1's tables: `R` with 10× the tuples
//! of `S`, uniform attributes, predicates tuned to a chosen selectivity,
//! 90 % of R tuples having exactly one matching S tuple, and results
//! padded to 1 KB. [`intrusion`] generates the network-monitoring
//! relations behind the §2.1 example queries.

pub mod intrusion;
pub mod rs;

pub use rs::{RsParams, RsWorkload};

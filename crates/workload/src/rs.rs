//! The §5.1 synthetic workload.
//!
//! ```sql
//! SELECT R.pkey, S.pkey, R.pad
//! FROM R, S
//! WHERE R.num1 = S.pkey
//!   AND R.num2 > constant1
//!   AND S.num2 > constant2
//!   AND f(R.num3, S.num3) > constant3
//! ```
//!
//! * `|R| = 10 · |S|`, attributes uniform.
//! * Predicate constants chosen for a target selectivity (default 50 %).
//! * 90 % of R tuples have exactly one matching S tuple; the rest none.
//! * `R.pad` sizes result tuples to 1 KB.

use pier_core::expr::{Expr, Func};
use pier_core::plan::{JoinSpec, JoinStrategy, QueryDesc, QueryOp, ScanSpec};
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs of the workload generator.
#[derive(Clone, Copy, Debug)]
pub struct RsParams {
    /// Number of S tuples (R gets 10× this).
    pub s_rows: u64,
    /// Selectivity of `R.num2 > constant1`, in percent.
    pub sel_r_pct: u32,
    /// Selectivity of `S.num2 > constant2`, in percent (the Fig. 4/5
    /// sweep variable).
    pub sel_s_pct: u32,
    /// Selectivity of `f(R.num3, S.num3) > constant3`, in percent.
    pub sel_f_pct: u32,
    /// Fraction of R rows with a matching S row, in percent (paper: 90).
    pub match_pct: u32,
    /// Pad bytes appended to R so result tuples are ~1 KB (paper value).
    pub pad_bytes: u32,
    pub seed: u64,
}

impl Default for RsParams {
    fn default() -> Self {
        RsParams {
            s_rows: 100,
            sel_r_pct: 50,
            sel_s_pct: 50,
            sel_f_pct: 50,
            match_pct: 90,
            pad_bytes: 1000,
            seed: 0xF1E1D,
        }
    }
}

/// Generated tables plus the query that §5 runs over them.
#[derive(Clone, Debug)]
pub struct RsWorkload {
    pub params: RsParams,
    /// `R(pkey, num1, num2, num3, pad)`.
    pub r: Vec<Tuple>,
    /// `S(pkey, num2, num3)`.
    pub s: Vec<Tuple>,
}

impl RsWorkload {
    pub fn generate(params: RsParams) -> RsWorkload {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let n_s = params.s_rows as i64;
        let s: Vec<Tuple> = (0..n_s)
            .map(|k| {
                Tuple::new(vec![
                    Value::I64(k),
                    Value::I64(rng.gen_range(0..100)),
                    Value::I64(rng.gen_range(0..100)),
                ])
            })
            .collect();
        let r: Vec<Tuple> = (0..n_s * 10)
            .map(|k| {
                // 90% match exactly one S.pkey; 10% point past the table.
                let num1 = if rng.gen_range(0..100i64) < params.match_pct as i64 {
                    rng.gen_range(0..n_s)
                } else {
                    n_s + rng.gen_range(0..n_s.max(1))
                };
                Tuple::new(vec![
                    Value::I64(k),
                    Value::I64(num1),
                    Value::I64(rng.gen_range(0..100)),
                    Value::I64(rng.gen_range(0..100)),
                    Value::Pad(params.pad_bytes),
                ])
            })
            .collect();
        RsWorkload { params, r, s }
    }

    /// Predicate constant for a selectivity in percent over uniform
    /// 0..100 values: `x > c` keeps `100 - c - 1 ... ` — we use
    /// `c = 99 - sel` so that exactly `sel` of the 100 values pass.
    fn cutoff(sel_pct: u32) -> i64 {
        99 - sel_pct.min(100) as i64
    }

    /// The §5.1 join spec under a given strategy.
    pub fn join_spec(&self, strategy: JoinStrategy) -> JoinSpec {
        let p = &self.params;
        let left = ScanSpec::new("R", 5, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(Self::cutoff(p.sel_r_pct))))
            .with_join_col(1);
        let right = ScanSpec::new("S", 3, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(Self::cutoff(p.sel_s_pct))))
            .with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.post_pred = Some(Expr::gt(
            Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
            Expr::lit(Self::cutoff(p.sel_f_pct)),
        ));
        // SELECT R.pkey, S.pkey, R.pad
        j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
        // Size the filters for the keys they will summarize (~8 bits per
        // R key); at paper scale this is negligible next to the tables.
        j.bloom_bits = ((self.r.len() as u32) * 8).max(2048);
        j
    }

    /// A complete one-shot query descriptor.
    pub fn query(&self, qid: u64, initiator: u32, strategy: JoinStrategy) -> QueryDesc {
        QueryDesc::one_shot(qid, initiator, QueryOp::Join(self.join_spec(strategy)))
    }

    /// Ground-truth result multiset via the reference evaluator.
    pub fn expected(&self, strategy: JoinStrategy) -> Vec<Tuple> {
        pier_core::semantics::reference_join(&self.join_spec(strategy), &self.r, &self.s)
    }

    /// Total wire bytes of the base tables (the paper's "database size").
    pub fn total_bytes(&self) -> u64 {
        let sum = |ts: &[Tuple]| ts.iter().map(|t| t.wire_size() as u64).sum::<u64>();
        sum(&self.r) + sum(&self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_section_5_1() {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 200,
            ..Default::default()
        });
        assert_eq!(wl.s.len(), 200);
        assert_eq!(wl.r.len(), 2000);
        // ~90% of R rows match some S row.
        let matches =
            wl.r.iter()
                .filter(|t| t.get(1).as_i64().unwrap() < 200)
                .count();
        let frac = matches as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.05, "match fraction {frac}");
        // R tuples are ~1 KB on the wire.
        assert!(wl.r[0].wire_size() > 1000);
    }

    #[test]
    fn predicate_selectivities_track_parameters() {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 500,
            sel_r_pct: 30,
            sel_s_pct: 70,
            ..Default::default()
        });
        let j = wl.join_spec(JoinStrategy::SymmetricHash);
        let sel_r =
            wl.r.iter()
                .filter(|t| j.left.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.r.len() as f64;
        let sel_s =
            wl.s.iter()
                .filter(|t| j.right.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.s.len() as f64;
        assert!((sel_r - 0.3).abs() < 0.05, "sel_r {sel_r}");
        assert!((sel_s - 0.7).abs() < 0.05, "sel_s {sel_s}");
    }

    #[test]
    fn expected_results_scale_with_selectivity() {
        let lo = RsWorkload::generate(RsParams {
            s_rows: 300,
            sel_s_pct: 10,
            ..Default::default()
        });
        let hi = RsWorkload::generate(RsParams {
            s_rows: 300,
            sel_s_pct: 90,
            seed: RsParams::default().seed,
            ..Default::default()
        });
        let n_lo = lo.expected(JoinStrategy::SymmetricHash).len();
        let n_hi = hi.expected(JoinStrategy::SymmetricHash).len();
        assert!(n_hi > 4 * n_lo, "lo {n_lo} hi {n_hi}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RsWorkload::generate(RsParams::default());
        let b = RsWorkload::generate(RsParams::default());
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
        let c = RsWorkload::generate(RsParams {
            seed: 9,
            ..Default::default()
        });
        assert_ne!(a.r, c.r);
    }
}

//! The §5.1 synthetic workload.
//!
//! ```sql
//! SELECT R.pkey, S.pkey, R.pad
//! FROM R, S
//! WHERE R.num1 = S.pkey
//!   AND R.num2 > constant1
//!   AND S.num2 > constant2
//!   AND f(R.num3, S.num3) > constant3
//! ```
//!
//! * `|R| = 10 · |S|`, attributes uniform.
//! * Predicate constants chosen for a target selectivity (default 50 %).
//! * 90 % of R tuples have exactly one matching S tuple; the rest none.
//! * `R.pad` sizes result tuples to 1 KB.
//!
//! Beyond the paper's binary workload, a third table `T(pkey, num2,
//! num3)` extends the schema for multi-way pipelines: `S.num3` joins
//! `T.pkey`, and `t_rows` dials the fraction of S rows with a T partner
//! (`S.num3` is uniform in `0..100`).

use pier_core::expr::{Expr, Func};
use pier_core::plan::{
    JoinSpec, JoinStage, JoinStrategy, MultiJoinSpec, QueryDesc, QueryOp, ScanSpec,
};
use pier_core::tuple::Tuple;
use pier_core::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs of the workload generator.
#[derive(Clone, Copy, Debug)]
pub struct RsParams {
    /// Number of S tuples (R gets 10× this).
    pub s_rows: u64,
    /// Selectivity of `R.num2 > constant1`, in percent.
    pub sel_r_pct: u32,
    /// Selectivity of `S.num2 > constant2`, in percent (the Fig. 4/5
    /// sweep variable).
    pub sel_s_pct: u32,
    /// Selectivity of `f(R.num3, S.num3) > constant3`, in percent.
    pub sel_f_pct: u32,
    /// Fraction of R rows with a matching S row, in percent (paper: 90).
    pub match_pct: u32,
    /// Pad bytes appended to R so result tuples are ~1 KB (paper value).
    pub pad_bytes: u32,
    /// Number of T tuples (third table for multi-way pipelines). T keys
    /// cover `0..t_rows`, so `min(t_rows, 100)` % of S rows join a T row.
    pub t_rows: u64,
    pub seed: u64,
}

impl Default for RsParams {
    fn default() -> Self {
        RsParams {
            s_rows: 100,
            sel_r_pct: 50,
            sel_s_pct: 50,
            sel_f_pct: 50,
            match_pct: 90,
            pad_bytes: 1000,
            t_rows: 60,
            seed: 0xF1E1D,
        }
    }
}

/// Generated tables plus the query that §5 runs over them.
#[derive(Clone, Debug)]
pub struct RsWorkload {
    pub params: RsParams,
    /// `R(pkey, num1, num2, num3, pad)`.
    pub r: Vec<Tuple>,
    /// `S(pkey, num2, num3)`.
    pub s: Vec<Tuple>,
    /// `T(pkey, num2, num3)` — the multi-way extension table.
    pub t: Vec<Tuple>,
}

impl RsWorkload {
    pub fn generate(params: RsParams) -> RsWorkload {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let n_s = params.s_rows as i64;
        let s: Vec<Tuple> = (0..n_s)
            .map(|k| {
                Tuple::new(vec![
                    Value::I64(k),
                    Value::I64(rng.gen_range(0..100)),
                    Value::I64(rng.gen_range(0..100)),
                ])
            })
            .collect();
        let r: Vec<Tuple> = (0..n_s * 10)
            .map(|k| {
                // 90% match exactly one S.pkey; 10% point past the table.
                let num1 = if rng.gen_range(0..100i64) < params.match_pct as i64 {
                    rng.gen_range(0..n_s)
                } else {
                    n_s + rng.gen_range(0..n_s.max(1))
                };
                Tuple::new(vec![
                    Value::I64(k),
                    Value::I64(num1),
                    Value::I64(rng.gen_range(0..100)),
                    Value::I64(rng.gen_range(0..100)),
                    Value::Pad(params.pad_bytes),
                ])
            })
            .collect();
        // T is generated after R and S so binary-workload bytes are
        // identical per seed whether or not T is used.
        let t: Vec<Tuple> = (0..params.t_rows as i64)
            .map(|k| {
                Tuple::new(vec![
                    Value::I64(k),
                    Value::I64(rng.gen_range(0..100i64)),
                    Value::I64(rng.gen_range(0..100i64)),
                ])
            })
            .collect();
        RsWorkload { params, r, s, t }
    }

    /// Predicate constant for a selectivity in percent over uniform
    /// 0..100 values: `x > c` keeps `100 - c - 1 ... ` — we use
    /// `c = 99 - sel` so that exactly `sel` of the 100 values pass.
    fn cutoff(sel_pct: u32) -> i64 {
        99 - sel_pct.min(100) as i64
    }

    /// The §5.1 join spec under a given strategy.
    pub fn join_spec(&self, strategy: JoinStrategy) -> JoinSpec {
        let p = &self.params;
        let left = ScanSpec::new("R", 5, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(Self::cutoff(p.sel_r_pct))))
            .with_join_col(1);
        let right = ScanSpec::new("S", 3, 0)
            .with_pred(Expr::gt(Expr::col(1), Expr::lit(Self::cutoff(p.sel_s_pct))))
            .with_join_col(0);
        let mut j = JoinSpec::new(strategy, left, right);
        j.post_pred = Some(Expr::gt(
            Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
            Expr::lit(Self::cutoff(p.sel_f_pct)),
        ));
        // SELECT R.pkey, S.pkey, R.pad
        j.project = vec![Expr::col(0), Expr::col(5), Expr::col(4)];
        // Size the filters for the keys they will summarize (~8 bits per
        // R key); at paper scale this is negligible next to the tables.
        j.bloom_bits = ((self.r.len() as u32) * 8).max(2048);
        j
    }

    /// A complete one-shot query descriptor.
    pub fn query(&self, qid: u64, initiator: u32, strategy: JoinStrategy) -> QueryDesc {
        QueryDesc::one_shot(qid, initiator, QueryOp::Join(self.join_spec(strategy)))
    }

    /// Ground-truth result multiset via the reference evaluator.
    pub fn expected(&self, strategy: JoinStrategy) -> Vec<Tuple> {
        pier_core::semantics::reference_join(&self.join_spec(strategy), &self.r, &self.s)
    }

    /// The 3-way extension of the §5.1 query, as a left-deep pipeline:
    ///
    /// ```sql
    /// SELECT R.pkey, S.pkey, T.pkey, R.pad
    /// FROM R, S, T
    /// WHERE R.num1 = S.pkey AND S.num3 = T.pkey
    ///   AND R.num2 > constant1 AND T.num2 > constant2
    ///   AND f(R.num3, S.num3) > constant3
    /// ```
    pub fn multi_join_spec(&self) -> MultiJoinSpec {
        let p = &self.params;
        let base = ScanSpec::new("R", 5, 0)
            .with_pred(Expr::gt(Expr::col(2), Expr::lit(Self::cutoff(p.sel_r_pct))));
        let s_stage = JoinStage {
            right: ScanSpec::new("S", 3, 0).with_join_col(0),
            left_col: 1, // R.num1
            // f(R.num3, S.num3) > c3 becomes evaluable at this stage.
            stage_pred: Some(Expr::gt(
                Expr::Call(Func::WorkloadF, vec![Expr::col(3), Expr::col(7)]),
                Expr::lit(Self::cutoff(p.sel_f_pct)),
            )),
        };
        let t_stage = JoinStage {
            right: ScanSpec::new("T", 3, 0)
                .with_pred(Expr::gt(Expr::col(1), Expr::lit(Self::cutoff(p.sel_s_pct))))
                .with_join_col(0),
            left_col: 7, // S.num3 within R ++ S
            stage_pred: None,
        };
        let mut m = MultiJoinSpec::new(base, vec![s_stage, t_stage]);
        // SELECT R.pkey, S.pkey, T.pkey, R.pad
        m.project = vec![Expr::col(0), Expr::col(5), Expr::col(8), Expr::col(4)];
        m
    }

    /// A complete one-shot 3-way pipeline query descriptor.
    pub fn multi_query(&self, qid: u64, initiator: u32) -> QueryDesc {
        QueryDesc::one_shot(qid, initiator, QueryOp::MultiJoin(self.multi_join_spec()))
    }

    /// Ground-truth multiset for [`Self::multi_join_spec`].
    pub fn expected_multi(&self) -> Vec<Tuple> {
        pier_core::semantics::reference_multijoin(&self.multi_join_spec(), &self.tables())
    }

    /// The 3-way query with a narrow SELECT — `R.pad` is published with
    /// every R tuple but read by nobody downstream, the projection-
    /// pushdown showcase (`exp_pruning`):
    ///
    /// ```sql
    /// SELECT R.pkey, S.pkey, T.pkey FROM R, S, T ...
    /// ```
    pub fn multi_join_spec_narrow(&self) -> MultiJoinSpec {
        let mut m = self.multi_join_spec();
        m.project = vec![Expr::col(0), Expr::col(5), Expr::col(8)];
        m
    }

    /// A one-shot descriptor for [`Self::multi_join_spec_narrow`];
    /// `prune = false` reinstates full-width intermediates (baseline).
    pub fn multi_query_narrow(&self, qid: u64, initiator: u32, prune: bool) -> QueryDesc {
        QueryDesc::one_shot(
            qid,
            initiator,
            QueryOp::MultiJoin(self.multi_join_spec_narrow()),
        )
        .with_prune(prune)
    }

    /// Ground-truth multiset for [`Self::multi_join_spec_narrow`].
    pub fn expected_multi_narrow(&self) -> Vec<Tuple> {
        pier_core::semantics::reference_multijoin(&self.multi_join_spec_narrow(), &self.tables())
    }

    /// The base tables keyed by name, as the reference evaluator wants.
    pub fn tables(&self) -> std::collections::HashMap<String, Vec<Tuple>> {
        let mut m = std::collections::HashMap::new();
        m.insert("R".to_string(), self.r.clone());
        m.insert("S".to_string(), self.s.clone());
        m.insert("T".to_string(), self.t.clone());
        m
    }

    /// Total wire bytes of the base tables (the paper's "database size").
    pub fn total_bytes(&self) -> u64 {
        let sum = |ts: &[Tuple]| ts.iter().map(|t| t.wire_size() as u64).sum::<u64>();
        sum(&self.r) + sum(&self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_section_5_1() {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 200,
            ..Default::default()
        });
        assert_eq!(wl.s.len(), 200);
        assert_eq!(wl.r.len(), 2000);
        // ~90% of R rows match some S row.
        let matches =
            wl.r.iter()
                .filter(|t| t.get(1).as_i64().unwrap() < 200)
                .count();
        let frac = matches as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.05, "match fraction {frac}");
        // R tuples are ~1 KB on the wire.
        assert!(wl.r[0].wire_size() > 1000);
    }

    #[test]
    fn third_table_and_multiway_ground_truth() {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 100,
            t_rows: 60,
            ..Default::default()
        });
        assert_eq!(wl.t.len(), 60);
        // ~60% of S rows have num3 < 60 and thus a T partner.
        let matched =
            wl.s.iter()
                .filter(|t| t.get(2).as_i64().unwrap() < 60)
                .count() as f64
                / wl.s.len() as f64;
        assert!((matched - 0.6).abs() < 0.15, "S→T match fraction {matched}");
        let out = wl.expected_multi();
        assert!(!out.is_empty());
        // Every result row passed all three stages: 4 output columns.
        assert!(out.iter().all(|r| r.arity() == 4));
        // Cross-check the reference pipeline with a manual triple loop.
        let c1 = 99 - wl.params.sel_r_pct as i64;
        let c2 = 99 - wl.params.sel_s_pct as i64;
        let c3 = 99 - wl.params.sel_f_pct as i64;
        let mut manual = 0usize;
        for r in &wl.r {
            if r.get(2).as_i64().unwrap() <= c1 {
                continue;
            }
            for s in &wl.s {
                if r.get(1) != s.get(0) {
                    continue;
                }
                let f = (r.get(3).as_i64().unwrap() + s.get(2).as_i64().unwrap()) % 100;
                if f <= c3 {
                    continue;
                }
                for t in &wl.t {
                    if s.get(2) == t.get(0) && t.get(1).as_i64().unwrap() > c2 {
                        manual += 1;
                    }
                }
            }
        }
        assert_eq!(out.len(), manual);
    }

    #[test]
    fn predicate_selectivities_track_parameters() {
        let wl = RsWorkload::generate(RsParams {
            s_rows: 500,
            sel_r_pct: 30,
            sel_s_pct: 70,
            ..Default::default()
        });
        let j = wl.join_spec(JoinStrategy::SymmetricHash);
        let sel_r =
            wl.r.iter()
                .filter(|t| j.left.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.r.len() as f64;
        let sel_s =
            wl.s.iter()
                .filter(|t| j.right.pred.as_ref().unwrap().matches(t))
                .count() as f64
                / wl.s.len() as f64;
        assert!((sel_r - 0.3).abs() < 0.05, "sel_r {sel_r}");
        assert!((sel_s - 0.7).abs() < 0.05, "sel_s {sel_s}");
    }

    #[test]
    fn expected_results_scale_with_selectivity() {
        let lo = RsWorkload::generate(RsParams {
            s_rows: 300,
            sel_s_pct: 10,
            ..Default::default()
        });
        let hi = RsWorkload::generate(RsParams {
            s_rows: 300,
            sel_s_pct: 90,
            seed: RsParams::default().seed,
            ..Default::default()
        });
        let n_lo = lo.expected(JoinStrategy::SymmetricHash).len();
        let n_hi = hi.expected(JoinStrategy::SymmetricHash).len();
        assert!(n_hi > 4 * n_lo, "lo {n_lo} hi {n_hi}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RsWorkload::generate(RsParams::default());
        let b = RsWorkload::generate(RsParams::default());
        assert_eq!(a.r, b.r);
        assert_eq!(a.s, b.s);
        let c = RsWorkload::generate(RsParams {
            seed: 9,
            ..Default::default()
        });
        assert_ne!(a.r, c.r);
    }
}

//! Network-monitoring data behind the §2.1 example queries.
//!
//! The paper's application pull is in-situ querying of widely deployed
//! monitoring tools (Snort/TBIT/tcpdump wrappers). We synthesize their
//! outputs: intrusion fingerprints with Zipf-ish popularity (a few
//! attacks seen by many nodes), per-address reputations, spam-gateway
//! and web-robot sightings sharing domains, and packet-header traces.

use pier_core::tuple::Tuple;
use pier_core::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Zipf-like index in `0..n`: rank-skewed so low indices dominate.
fn zipfish(rng: &mut SmallRng, n: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0001..1.0);
    let idx = (n as f64).powf(u) - 1.0;
    (idx as u64).min(n - 1)
}

/// `intrusions(id, fingerprint, address)`: attack reports published by
/// victim nodes; fingerprints are skewed so widespread attacks recur.
pub fn intrusions(n: usize, distinct_fp: u64, distinct_addr: u64, seed: u64) -> Vec<Tuple> {
    intrusions_from(0, n, distinct_fp, distinct_addr, seed)
}

/// [`intrusions`] with ids starting at `start_id` — the batched form a
/// *standing* query consumes: batch `b` of a report stream uses
/// `start_id = b * n` so primary keys (and hence DHT resourceIDs) never
/// collide across batches.
pub fn intrusions_from(
    start_id: i64,
    n: usize,
    distinct_fp: u64,
    distinct_addr: u64,
    seed: u64,
) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let fp = zipfish(&mut rng, distinct_fp);
            let addr = rng.gen_range(0..distinct_addr);
            Tuple::new(vec![
                Value::I64(start_id + i as i64),
                Value::str(&format!("sig-{fp:04}")),
                Value::str(&format!(
                    "10.{}.{}.{}",
                    addr >> 16 & 255,
                    addr >> 8 & 255,
                    addr & 255
                )),
            ])
        })
        .collect()
}

/// The paper's intrusion-detection scenario (§2.1) run as a *standing*
/// query: per-attacker triage — how many reports and the worst advisory
/// severity per reported address, weighted by the reporter being known
/// to the reputation table — re-emitted every `epoch_secs`, optionally
/// over a sliding `window_secs` so stale reports age out.
pub fn triage_standing_sql(window_secs: Option<u64>, epoch_secs: u64) -> String {
    let window = window_secs.map_or(String::new(), |w| format!(" WINDOW {w} SECONDS"));
    format!(
        "SELECT I.address, count(*) AS reports, max(A.severity) AS sev \
         FROM intrusions I, advisories A, reputation R \
         WHERE I.fingerprint = A.fingerprint AND I.address = R.address \
         GROUP BY I.address{window} EPOCH {epoch_secs} SECONDS"
    )
}

/// One tenant of a multi-tenant standing-query workload: a flat
/// per-epoch aggregate watching a single attack fingerprint — hundreds
/// of these coexist, each with its own lifecycle (install → epochs →
/// uninstall).
pub fn tenant_count_sql(fp: u64, epoch_secs: u64) -> String {
    format!(
        "SELECT I.address, count(*) AS reports FROM intrusions I \
         WHERE I.fingerprint = 'sig-{fp:04}' \
         GROUP BY I.address EPOCH {epoch_secs} SECONDS"
    )
}

/// A join-shaped tenant: reports for one fingerprint joined with its
/// advisory, carrying a per-query `RENEW` period so the standing join's
/// rehash soft state outlives the fallback horizon without any
/// node-global renewal loop.
pub fn tenant_severity_sql(fp: u64, epoch_secs: u64, renew_secs: u64) -> String {
    format!(
        "SELECT I.address, count(*) AS reports, max(A.severity) AS sev \
         FROM intrusions I, advisories A \
         WHERE I.fingerprint = A.fingerprint AND I.fingerprint = 'sig-{fp:04}' \
         GROUP BY I.address EPOCH {epoch_secs} SECONDS RENEW {renew_secs} SECONDS"
    )
}

/// A 3-way tenant: the full triage pipeline (reports ⨝ advisories ⨝
/// reputations) for one fingerprint, with a per-query renewal period.
pub fn tenant_triage_sql(fp: u64, epoch_secs: u64, renew_secs: u64) -> String {
    format!(
        "SELECT I.address, count(*) AS reports, max(A.severity) AS sev \
         FROM intrusions I, advisories A, reputation R \
         WHERE I.fingerprint = A.fingerprint AND I.address = R.address \
         AND I.fingerprint = 'sig-{fp:04}' \
         GROUP BY I.address EPOCH {epoch_secs} SECONDS RENEW {renew_secs} SECONDS"
    )
}

/// `reputation(address, weight)`: an organization's stored judgment of
/// reporters (§2.1's weighted query).
pub fn reputations(distinct_addr: u64, seed: u64) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0002);
    (0..distinct_addr)
        .map(|addr| {
            Tuple::new(vec![
                Value::str(&format!(
                    "10.{}.{}.{}",
                    addr >> 16 & 255,
                    addr >> 8 & 255,
                    addr & 255
                )),
                Value::I64(rng.gen_range(0..5)),
            ])
        })
        .collect()
}

/// `advisories(fingerprint, severity)`: one security-advisory row per
/// known attack fingerprint, for the 3-way triage query joining reports
/// with advisories and reporter reputations:
///
/// ```sql
/// SELECT I.address, A.severity, R.weight
/// FROM intrusions I, advisories A, reputation R
/// WHERE I.fingerprint = A.fingerprint AND I.address = R.address
///   AND A.severity > 6
/// ```
pub fn advisories(distinct_fp: u64, seed: u64) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0005);
    (0..distinct_fp)
        .map(|fp| {
            Tuple::new(vec![
                Value::str(&format!("sig-{fp:04}")),
                Value::I64(rng.gen_range(0..10)),
            ])
        })
        .collect()
}

/// `spamGateways(id, source, smtpGWDomain)` and
/// `robots(id, clientDomain)` with controlled domain overlap, so the
/// compromised-subnet join (§2.1's first query) has answers.
pub fn gateways_and_robots(
    n_gw: usize,
    n_robots: usize,
    domains: u64,
    seed: u64,
) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0003);
    let gw = (0..n_gw)
        .map(|i| {
            let d = zipfish(&mut rng, domains);
            Tuple::new(vec![
                Value::I64(i as i64),
                Value::str(&format!("mail{}.d{d}.example", i)),
                Value::str(&format!("d{d}.example")),
            ])
        })
        .collect();
    let robots = (0..n_robots)
        .map(|i| {
            let d = zipfish(&mut rng, domains);
            Tuple::new(vec![
                Value::I64(i as i64),
                Value::str(&format!("d{d}.example")),
            ])
        })
        .collect();
    (gw, robots)
}

/// `packets(id, src, dst, port, bytes)`: a tcpdump-style header trace
/// for bandwidth-utilization aggregates.
pub fn packet_trace(n: usize, hosts: u64, seed: u64) -> Vec<Tuple> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0004);
    let ports = [22i64, 25, 53, 80, 443, 6881];
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::I64(i as i64),
                Value::str(&format!("h{}", zipfish(&mut rng, hosts))),
                Value::str(&format!("h{}", rng.gen_range(0..hosts))),
                Value::I64(ports[rng.gen_range(0..ports.len())]),
                Value::I64(rng.gen_range(40..1500)),
            ])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fingerprints_are_skewed() {
        let rows = intrusions(2000, 50, 100, 1);
        let mut counts: HashMap<String, usize> = HashMap::new();
        for t in &rows {
            *counts.entry(t.get(1).to_string()).or_insert(0) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = 2000 / counts.len();
        assert!(max > 3 * avg, "head fingerprint dominates: {max} vs {avg}");
    }

    #[test]
    fn batched_streams_never_collide_on_ids() {
        let b0 = intrusions_from(0, 50, 10, 20, 5);
        let b1 = intrusions_from(50, 50, 10, 20, 6);
        let ids: std::collections::HashSet<i64> = b0
            .iter()
            .chain(&b1)
            .map(|t| t.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(ids.len(), 100, "unique across batches");
        // Fingerprints stay compatible with the advisories generator.
        let advs = advisories(10, 5);
        let names: std::collections::HashSet<String> =
            advs.iter().map(|t| t.get(0).to_string()).collect();
        assert!(b1.iter().all(|t| names.contains(&t.get(1).to_string())));
    }

    #[test]
    fn triage_standing_sql_parses_against_the_catalog() {
        use pier_core::plan::QueryOp;
        let catalog = pier_core::catalog::Catalog::intrusion();
        let desc = pier_core::sql::parse_continuous_query(
            &triage_standing_sql(Some(120), 30),
            &catalog,
            pier_core::plan::JoinStrategy::SymmetricHash,
            1,
            0,
        )
        .unwrap();
        assert!(desc.continuous);
        assert!(desc.window.is_some());
        let QueryOp::MultiJoinAgg { join, agg } = &desc.op else {
            panic!("expected a 3-way join aggregate")
        };
        assert_eq!(join.n_tables(), 3);
        assert_eq!(agg.aggs.len(), 2, "count(*) and max(severity)");
        assert!(agg.epoch.is_some());
        // The unwindowed form parses too.
        assert!(pier_core::sql::parse_continuous_query(
            &triage_standing_sql(None, 60),
            &catalog,
            pier_core::plan::JoinStrategy::SymmetricHash,
            2,
            0,
        )
        .is_ok());
    }

    #[test]
    fn tenant_sql_parses_with_per_query_renewal() {
        use pier_core::plan::QueryOp;
        let catalog = pier_core::catalog::Catalog::intrusion();
        let parse = |sql: &str, qid| {
            pier_core::sql::parse_continuous_query(
                sql,
                &catalog,
                pier_core::plan::JoinStrategy::SymmetricHash,
                qid,
                0,
            )
            .unwrap()
        };
        let flat = parse(&tenant_count_sql(3, 30), 1);
        assert!(flat.continuous && flat.renew_every.is_none());
        assert!(matches!(flat.op, QueryOp::Agg { .. }));
        let two = parse(&tenant_severity_sql(3, 30, 40), 2);
        assert_eq!(two.renew_every.unwrap().as_secs_f64(), 40.0);
        assert!(matches!(two.op, QueryOp::JoinAgg { .. }));
        let three = parse(&tenant_triage_sql(3, 30, 40), 3);
        assert_eq!(three.renew_every.unwrap().as_secs_f64(), 40.0);
        let QueryOp::MultiJoinAgg { join, .. } = &three.op else {
            panic!("expected a 3-way join aggregate")
        };
        assert_eq!(join.n_tables(), 3);
    }

    #[test]
    fn reputations_cover_every_address_exactly_once() {
        let reps = reputations(64, 2);
        assert_eq!(reps.len(), 64);
        let distinct: std::collections::HashSet<String> =
            reps.iter().map(|t| t.get(0).to_string()).collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn advisories_cover_every_fingerprint_once() {
        let advs = advisories(50, 7);
        assert_eq!(advs.len(), 50);
        let distinct: std::collections::HashSet<String> =
            advs.iter().map(|t| t.get(0).to_string()).collect();
        assert_eq!(distinct.len(), 50);
        // Fingerprints line up with the intrusions generator's naming.
        let reports = intrusions(100, 50, 20, 7);
        let names: std::collections::HashSet<String> =
            advs.iter().map(|t| t.get(0).to_string()).collect();
        assert!(reports
            .iter()
            .all(|t| names.contains(&t.get(1).to_string())));
    }

    #[test]
    fn gateway_and_robot_domains_overlap() {
        let (gw, robots) = gateways_and_robots(100, 100, 20, 3);
        let gw_domains: std::collections::HashSet<String> =
            gw.iter().map(|t| t.get(2).to_string()).collect();
        let overlap = robots
            .iter()
            .filter(|t| gw_domains.contains(&t.get(1).to_string()))
            .count();
        assert!(overlap > 10, "join has answers: {overlap}");
    }

    #[test]
    fn packet_trace_fields_in_range() {
        let pkts = packet_trace(500, 20, 4);
        assert_eq!(pkts.len(), 500);
        for p in &pkts {
            let bytes = p.get(4).as_i64().unwrap();
            assert!((40..1500).contains(&bytes));
        }
    }
}

#!/usr/bin/env bash
# Determinism guard: no raw std HashMap in emission-driving modules.
#
# The cross-engine pins (tests/cross_engine.rs) promise bit-identical
# traces, stats, and result rows between the sequential Sim, the
# ShardedSim at any width, and scripted replays. HashMap's randomized
# iteration order is the classic way to silently break that promise:
# iterate one to decide what to send, and the emission order varies per
# process. This guard fails CI on any `HashMap` mention in the
# emission-driving source trees unless the file is explicitly listed in
# ci/determinism_allowlist.txt with a justification.
set -euo pipefail

cd "$(dirname "$0")/.."

ALLOWLIST=ci/determinism_allowlist.txt
TREES=(crates/core/src crates/dht/src crates/simnet/src)

allowed() {
    local file=$1
    while IFS= read -r line; do
        line="${line%%#*}"
        line="$(echo "$line" | tr -d '[:space:]')"
        [ -z "$line" ] && continue
        [ "$line" = "$file" ] && return 0
    done <"$ALLOWLIST"
    return 1
}

status=0
while IFS= read -r file; do
    if ! allowed "$file"; then
        echo "determinism guard: $file uses HashMap but is not in $ALLOWLIST" >&2
        grep -n "HashMap" "$file" | head -5 >&2
        status=1
    fi
done < <(grep -rl "HashMap" "${TREES[@]}" --include='*.rs' | sort)

# Stale allowlist entries are noise that hides real hits: prune them.
while IFS= read -r line; do
    entry="${line%%#*}"
    entry="$(echo "$entry" | tr -d '[:space:]')"
    [ -z "$entry" ] && continue
    if [ ! -f "$entry" ] || ! grep -q "HashMap" "$entry"; then
        echo "determinism guard: stale allowlist entry $entry (no HashMap use)" >&2
        status=1
    fi
done <"$ALLOWLIST"

if [ "$status" -eq 0 ]; then
    echo "determinism guard: OK (only allowlisted files use HashMap)"
fi
exit "$status"

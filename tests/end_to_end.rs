//! Workspace-level integration tests: the full stack (simnet → DHT →
//! query processor) exercised through the umbrella `pier` crate, on
//! grown (not pre-stabilized) overlays, across topologies, and on the
//! actor-runtime cluster.

use pier::qp::plan::JoinStrategy;
use pier::qp::semantics::{recall, same_multiset};
use pier::qp::testkit::*;
use pier::qp::PierNode;
use pier::simnet::time::Dur;
use pier::simnet::topology::TransitStub;
use pier::simnet::{NetConfig, Sim};
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;
use std::sync::Arc;

fn small_workload(seed: u64) -> RsWorkload {
    RsWorkload::generate(RsParams {
        s_rows: 20,
        seed,
        ..Default::default()
    })
}

#[test]
fn join_on_an_incrementally_grown_overlay() {
    // Build the overlay through the real join protocol rather than the
    // balanced bootstrap, then run the workload query on it.
    let n = 10u32;
    let mut sim: Sim<PierNode> = Sim::new(NetConfig::latency_only(31));
    sim.add_node(PierNode::new(DhtConfig::default(), 0, None));
    for i in 1..n {
        sim.add_node(PierNode::new(DhtConfig::default(), i, Some(0)));
        sim.run_for(Dur::from_secs(3));
    }
    sim.run_for(Dur::from_secs(10));

    let wl = small_workload(3);
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    sim.run_for(Dur::from_secs(10));

    let expected = wl.expected(JoinStrategy::SymmetricHash);
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

#[test]
fn join_on_transit_stub_topology() {
    let n = 24;
    let net = NetConfig {
        topology: Arc::new(TransitStub::paper_default(n as u32, 5)),
        inbound_bps: Some(10e6),
        seed: 5,
    };
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), net);
    let wl = small_workload(5);
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let expected = wl.expected(JoinStrategy::SymmetricHash);
    let desc = wl.query(2, 1, JoinStrategy::SymmetricHash);
    let results = run_query(&mut sim, 1, desc, Dur::from_secs(120));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

#[test]
fn join_over_chord_overlay_end_to_end() {
    let cfg = DhtConfig::static_network().with_overlay(pier_dht::OverlayKind::Chord);
    let mut sim = stabilized_pier_sim(16, cfg, NetConfig::latency_only(9));
    let wl = small_workload(9);
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let expected = wl.expected(JoinStrategy::SymmetricHash);
    let desc = wl.query(3, 0, JoinStrategy::SymmetricHash);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

#[test]
fn query_during_churn_degrades_gracefully() {
    // Fail nodes mid-query: recall may drop below 1 but never above, and
    // precision stays perfect (we never fabricate tuples).
    let n = 20;
    let mut sim = stabilized_pier_sim(n, DhtConfig::default(), NetConfig::latency_only(13));
    let wl = RsWorkload::generate(RsParams {
        s_rows: 60,
        seed: 13,
        ..Default::default()
    });
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let expected = wl.expected(JoinStrategy::SymmetricHash);

    let qid = 4;
    let desc = wl.query(qid, 0, JoinStrategy::SymmetricHash);
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_millis(3500));
    sim.fail_node(7);
    sim.fail_node(11);
    sim.run_for(Dur::from_secs(120));

    let results: Vec<_> = sim
        .app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    let r = recall(&expected, &results);
    let p = pier::qp::semantics::precision(&expected, &results);
    assert!(r <= 1.0 + 1e-9);
    assert!(r > 0.3, "most results still arrive: recall {r}");
    assert!(p > 0.999, "no fabricated results: precision {p}");
}

#[test]
fn threaded_cluster_runs_the_same_query() {
    // The Fig. 8 configuration in miniature: real threads, wall clock.
    let (t30, count) = pier_bench_threaded(8);
    assert!(count >= 30, "got {count} results");
    assert!(t30.is_some());
}

/// Minimal threaded run (mirrors pier-bench's fig8 helper without
/// depending on the bench crate).
fn pier_bench_threaded(n: usize) -> (Option<f64>, usize) {
    use pier::qp::NodeRequest;
    use pier::simnet::time::Time;
    use pier::simnet::{Cluster, NodeId};

    let wl = RsWorkload::generate(RsParams {
        s_rows: 40,
        seed: 8,
        ..Default::default()
    });
    let cfg = DhtConfig::static_network();
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<PierNode> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect();
    let cluster = Cluster::spawn(apps, 7);
    let mut per_node: Vec<(Vec<pier::qp::Tuple>, Vec<pier::qp::Tuple>)> =
        vec![(Vec::new(), Vec::new()); n];
    for (i, row) in wl.r.iter().enumerate() {
        per_node[i % n].0.push(row.clone());
    }
    for (i, row) in wl.s.iter().enumerate() {
        per_node[i % n].1.push(row.clone());
    }
    for (i, (r, s)) in per_node.into_iter().enumerate() {
        for (table, rows) in [("R", r), ("S", s)] {
            cluster.request(
                i as NodeId,
                NodeRequest::PublishRows {
                    table: table.to_string(),
                    rows,
                    pkey_col: 0,
                    lifetime: Dur::from_secs(100_000),
                },
            );
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    let t0 = cluster.now();
    cluster.request(0, NodeRequest::Submit(Box::new(desc)));
    let mut last = 0;
    let mut stable = 0;
    for _ in 0..100 {
        std::thread::sleep(std::time::Duration::from_millis(40));
        let c = cluster
            .request(0, NodeRequest::ResultCount(1))
            .expect("initiator alive")
            .into_count();
        if c == last && c > 0 {
            stable += 1;
            if stable > 5 {
                break;
            }
        } else {
            stable = 0;
        }
        last = c;
    }
    let times: Vec<_> = cluster
        .request(0, NodeRequest::TimedResults(1))
        .expect("initiator alive")
        .into_timed_results()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    cluster.shutdown();
    let mut rel: Vec<f64> = times
        .iter()
        .map(|t| t.since(t0).as_secs_f64() * 1e3)
        .collect();
    rel.sort_by(f64::total_cmp);
    (rel.get(29).copied(), rel.len())
}

#[test]
fn sim_and_reference_agree_across_seeds_and_strategies() {
    // A randomized matrix: several seeds × strategies on modest networks.
    for (i, strategy) in JoinStrategy::ALL.iter().enumerate() {
        let seed = 100 + i as u64;
        let wl = small_workload(seed);
        let mut sim = stabilized_pier_sim(
            12,
            DhtConfig::static_network(),
            NetConfig::latency_only(seed),
        );
        publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
        publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
        settle_publish(&mut sim);
        let expected = wl.expected(*strategy);
        let desc = wl.query(10 + i as u64, 0, *strategy);
        let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
        assert!(
            same_multiset(&expected, &rows_of(&results)),
            "{} seed {seed}",
            strategy.name()
        );
    }
}

//! The §4.2 acceptance check for schema-aware dataflow: on the padded
//! 3-way workload, per-stage republished intermediates must exclude
//! `R.pad` until the final ship, results must still match the
//! centralized reference exactly, and the narrow-SELECT variant must
//! rehash measurably fewer aggregate bytes than the unpruned baseline.

use pier::qp::item::{QpItem, Side};
use pier::qp::plan::{qns, QueryDesc, QueryOp};
use pier::qp::semantics::{reference_eval, same_multiset};
use pier::qp::testkit::*;
use pier::qp::value::Value;
use pier::qp::{plan_sql, Catalog, CostParams, Objective, TableStats};
use pier::simnet::time::Dur;
use pier::simnet::{NetConfig, Sim};
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn workload(seed: u64) -> RsWorkload {
    RsWorkload::generate(RsParams {
        s_rows: 30,
        t_rows: 50,
        seed,
        ..Default::default()
    })
}

fn publish_rst(sim: &mut Sim<pier::qp::PierNode>, wl: &RsWorkload) {
    let life = Dur::from_secs(100_000);
    publish_round_robin(sim, "R", &wl.r, 0, life);
    publish_round_robin(sim, "S", &wl.s, 0, life);
    publish_round_robin(sim, "T", &wl.t, 0, life);
    settle_publish(sim);
}

fn has_pad(t: &pier::qp::Tuple) -> bool {
    t.vals.iter().any(|v| matches!(v, Value::Pad(_)))
}

/// The padded workload query — `R.pad` IS selected, so it must reach
/// the initiator — planned cost-based: the byte-accurate join order
/// defers wide R to the last stage, and pruning keeps it off every
/// intermediate edge. We then inspect the DHT stores of every node:
/// no republished (Side::Left) stage tuple may carry the pad; only R's
/// own final-stage rehash and the shipped results do.
#[test]
fn pad_rides_no_intermediate_until_the_final_ship() {
    let wl = workload(77);
    let mut catalog = Catalog::workload();
    for (name, rows, bytes) in [
        ("R", wl.r.len(), 1024u64),
        ("S", wl.s.len(), 100),
        ("T", wl.t.len(), 100),
    ] {
        catalog.set_stats(
            name,
            TableStats {
                rows: rows as u64,
                avg_tuple_bytes: bytes,
            },
        );
    }
    let op = plan_sql(
        "SELECT R.pkey, S.pkey, T.pkey, R.pad FROM R, S, T \
         WHERE R.num1 = S.pkey AND S.num3 = T.pkey \
         AND R.num2 > 49 AND T.num2 > 49 AND f(R.num3, S.num3) > 49",
        &catalog,
        &CostParams::paper_baseline(10.0),
        Objective::Traffic,
    )
    .unwrap();
    let QueryOp::MultiJoin(m) = &op else {
        panic!("expected a pipeline")
    };
    let n_stages = m.stages.len();
    assert_eq!(
        m.stages.last().unwrap().right.table,
        "R",
        "the byte-accurate order joins wide R last"
    );

    let expected = reference_eval(&op, &wl.tables());
    assert!(!expected.is_empty());
    let n = 10;
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(77));
    publish_rst(&mut sim, &wl);
    let qid = 5;
    let desc = QueryDesc::one_shot(qid, 0, op);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(120));

    // Results match the reference and do carry the 1 KB pad.
    assert!(same_multiset(&expected, &rows_of(&results)));
    assert!(results.iter().all(|(_, r)| has_pad(r)));

    // Audit every node's stage namespaces: republished intermediates
    // (Side::Left beyond the stage-0 base) never carry the pad; only
    // R's Side::Right fragments at the final stage do.
    let mut left_entries = 0usize;
    let mut right_pad_entries = 0usize;
    for i in 0..n {
        let node = sim.app(i as u32).unwrap();
        for k in 0..n_stages {
            for e in node.dht.store.lscan(qns::stage(qid, k)) {
                let QpItem::Tagged { side, row, .. } = &e.val else {
                    continue;
                };
                let row = row.decode();
                match side {
                    Side::Left => {
                        left_entries += 1;
                        assert!(
                            !has_pad(&row),
                            "stage {k}: republished intermediate carries the pad"
                        );
                    }
                    Side::Right => {
                        if has_pad(&row) {
                            assert_eq!(k, n_stages - 1, "pad only in R's final-stage rehash");
                            right_pad_entries += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(left_entries > 0, "the audit saw republished intermediates");
    assert!(right_pad_entries > 0, "R's own rehash still ships the pad");
}

/// The narrow-SELECT variant (nobody reads the pad): pruning at least
/// halves aggregate rehash traffic vs the full-width baseline, with
/// identical results — the `exp_pruning` acceptance bound as a test.
#[test]
fn pruning_at_least_halves_rehash_traffic_when_pad_is_dropped() {
    let wl = workload(78);
    let expected = wl.expected_multi_narrow();
    assert!(!expected.is_empty());
    let run = |prune: bool| -> (Vec<pier::qp::Tuple>, u64) {
        let n = 10;
        let mut sim =
            stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(78));
        publish_rst(&mut sim, &wl);
        let pre: u64 = (0..n)
            .map(|i| sim.app(i as u32).unwrap().dht.meter.query_traffic())
            .sum();
        let results = run_query(
            &mut sim,
            0,
            wl.multi_query_narrow(9, 0, prune),
            Dur::from_secs(120),
        );
        let post: u64 = (0..n)
            .map(|i| sim.app(i as u32).unwrap().dht.meter.query_traffic())
            .sum();
        (rows_of(&results), post - pre)
    };
    let (pruned_rows, pruned_bytes) = run(true);
    let (full_rows, full_bytes) = run(false);
    assert!(same_multiset(&expected, &pruned_rows));
    assert!(same_multiset(&expected, &full_rows));
    assert!(
        pruned_bytes * 2 <= full_bytes,
        "pruned {pruned_bytes} B vs unpruned {full_bytes} B"
    );
}

//! Strategy × churn matrix: every one of the four §4 join strategies is
//! run while nodes fail mid-query, asserting the §5.6 quality bounds —
//! recall degrades gracefully (never exceeds 1, never collapses) and
//! precision stays perfect (a failed node can lose answers, but the
//! engine must never fabricate them).

use pier::qp::plan::JoinStrategy;
use pier::qp::semantics::{precision, recall};
use pier::qp::testkit::*;
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

/// One cell of the matrix: run `strategy` on `n` nodes, failing
/// `kill` of them `fail_after` into the query.
fn churn_cell(strategy: JoinStrategy, seed: u64, kill: &[u32], fail_after: Dur) -> (f64, f64) {
    let n = 20;
    let mut sim = stabilized_pier_sim(n, DhtConfig::default(), NetConfig::latency_only(seed));
    let wl = RsWorkload::generate(RsParams {
        s_rows: 60,
        seed,
        ..Default::default()
    });
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let expected = wl.expected(strategy);
    assert!(!expected.is_empty());

    let qid = 40 + strategy as u64;
    let mut desc = wl.query(qid, 0, strategy);
    // Let Bloom collectors flush as soon as every node's fragment is in
    // (the count-based early flush) instead of sitting on the deadline.
    desc.n_nodes = n as u32;
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(fail_after);
    for &id in kill {
        sim.fail_node(id);
    }
    sim.run_for(Dur::from_secs(150));

    let results: Vec<_> = sim
        .app(0)
        .unwrap()
        .query_results(qid)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    (recall(&expected, &results), precision(&expected, &results))
}

#[test]
fn all_strategies_degrade_gracefully_under_churn() {
    for (i, strategy) in JoinStrategy::ALL.into_iter().enumerate() {
        let seed = 40 + i as u64;
        // Fail two non-initiator nodes a few seconds into the query —
        // late enough that the descriptor multicast has spread, early
        // enough that plenty of rehash/fetch work is still in flight.
        let (r, p) = churn_cell(strategy, seed, &[7, 13], Dur::from_millis(3500));
        assert!(
            r <= 1.0 + 1e-9,
            "{}: recall bounded above: {r}",
            strategy.name()
        );
        assert!(
            r > 0.3,
            "{}: most results survive two failures: recall {r}",
            strategy.name()
        );
        assert!(
            p > 0.999,
            "{}: no fabricated tuples: precision {p}",
            strategy.name()
        );
    }
}

#[test]
fn quality_is_perfect_without_churn_and_monotone_in_failures() {
    // Control row of the matrix: the same cells with nobody failing
    // must reach recall 1.0 — pinning that the churn cells above are
    // measuring churn, not some unrelated loss.
    for (i, strategy) in JoinStrategy::ALL.into_iter().enumerate() {
        let seed = 40 + i as u64;
        let (r, p) = churn_cell(strategy, seed, &[], Dur::from_millis(3500));
        assert!(
            (r - 1.0).abs() < 1e-9,
            "{}: full recall without churn: {r}",
            strategy.name()
        );
        assert!((p - 1.0).abs() < 1e-9, "{}: precision {p}", strategy.name());
    }
}

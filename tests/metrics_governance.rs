//! Tenancy governance and observability, end to end: admission control
//! rejects over-budget installs with a typed error, per-tenant token
//! buckets shed a hot tenant's flood without costing co-tenants recall,
//! and the metrics snapshot's `net` section equals the engine's
//! `NetStats` ground truth — byte-for-byte, on both the deterministic
//! simulator and the wall-clock actor-runtime cluster.

use pier::qp::metrics::net_stats_json;
use pier::qp::plan::JoinStrategy;
use pier::qp::semantics::same_multiset;
use pier::qp::tenant::{AdmissionError, Quota};
use pier::qp::testkit::*;
use pier::qp::{
    Expr, NodeRequest, PierNode, QueryDesc, QueryOp, ScanSpec, TableRate, Tuple, Value,
};
use pier::simnet::time::{Dur, Time};
use pier::simnet::{Cluster, NetConfig, NodeId};
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn lifetime() -> Dur {
    Dur::from_secs(100_000)
}

fn scan_query(qid: u64, initiator: u32, table: &str, tenant: u32) -> QueryDesc {
    let scan = ScanSpec::new(table, 2, 0);
    QueryDesc::standing(
        qid,
        initiator,
        QueryOp::Scan {
            scan,
            project: vec![Expr::col(0), Expr::col(1)],
        },
        None,
    )
    .with_tenant(tenant)
}

fn rows(lo: i64, hi: i64) -> Vec<Tuple> {
    (lo..hi)
        .map(|i| Tuple::new(vec![Value::I64(i), Value::I64(i * 10)]))
        .collect()
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

#[test]
fn install_rejected_when_priced_over_budget() {
    let n = 6;
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(11));
    sim.run_for(Dur::from_secs(2));

    // Register the same table rate and tenant quota everywhere, sized
    // so ONE standing scan fits the budget and a second does not.
    let rate = TableRate {
        rows_per_sec: 10.0,
        avg_tuple_bytes: 40.0,
    };
    let priced = sim
        .with_node(0, |node, _| {
            node.governor.set_table_rate(pier_dht::ns_of("T"), rate);
            node.governor.price(&scan_query(900, 0, "T", 5))
        })
        .unwrap();
    assert!(priced > 0.0, "a scan over a live table must cost something");
    let quota = Quota {
        max_priced_bytes_per_sec: priced * 1.5,
        ..Quota::unlimited()
    };
    for id in 0..n as NodeId {
        sim.with_node(id, |node, _| {
            node.governor.set_table_rate(pier_dht::ns_of("T"), rate);
            node.governor.set_quota(5, quota);
        });
    }

    // First query: within budget, admitted, installs overlay-wide.
    let ok = sim
        .with_node(0, |node, ctx| {
            node.try_submit(ctx, scan_query(901, 0, "T", 5))
        })
        .unwrap();
    assert!((ok.unwrap() - priced).abs() < 1e-9);
    sim.run_for(Dur::from_secs(5));
    for id in 0..n as NodeId {
        assert!(sim.node(id).unwrap().has_query(901), "node {id}");
    }

    // Second query: over budget — typed rejection, nothing on the wire.
    let bytes_before = sim.net_stats().bytes;
    let err = sim
        .with_node(0, |node, ctx| {
            node.try_submit(ctx, scan_query(902, 0, "T", 5))
        })
        .unwrap()
        .unwrap_err();
    match err {
        AdmissionError::PricedTraffic {
            tenant,
            committed,
            budget,
            ..
        } => {
            assert_eq!(tenant, 5);
            assert!((committed - priced).abs() < 1e-9);
            assert!((budget - priced * 1.5).abs() < 1e-9);
        }
        other => panic!("expected PricedTraffic, got {other:?}"),
    }
    sim.run_for(Dur::from_secs(5));
    assert_eq!(
        sim.net_stats().bytes,
        bytes_before,
        "a rejected submission must not reach the wire"
    );
    assert!(!sim.node(0).unwrap().has_query(902));
    assert_eq!(sim.node(0).unwrap().metrics.rejected_installs, 1);

    // Defense in depth: bypassing `try_submit` with a raw multicast
    // still gets refused at install time on every node.
    sim.with_node(0, |node, ctx| node.submit(ctx, scan_query(903, 0, "T", 5)));
    sim.run_for(Dur::from_secs(5));
    for id in 0..n as NodeId {
        let node = sim.node(id).unwrap();
        assert!(!node.has_query(903), "node {id} must refuse the install");
        assert_eq!(node.metrics.rejected_installs, if id == 0 { 2 } else { 1 });
    }

    // Standing-query cap: a typed StandingQueries rejection.
    for id in 0..n as NodeId {
        sim.with_node(id, |node, _| {
            node.governor.set_quota(
                6,
                Quota {
                    max_standing: 0,
                    ..Quota::unlimited()
                },
            )
        });
    }
    let err = sim
        .with_node(0, |node, ctx| {
            node.try_submit(ctx, scan_query(904, 0, "T", 6))
        })
        .unwrap()
        .unwrap_err();
    assert!(matches!(
        err,
        AdmissionError::StandingQueries { tenant: 6, .. }
    ));
}

// ---------------------------------------------------------------------
// Backpressure: hot-tenant flood vs co-tenant recall
// ---------------------------------------------------------------------

#[test]
fn token_bucket_shedding_keeps_cotenant_recall() {
    let n = 8;
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(23));
    sim.run_for(Dur::from_secs(2));

    // The hot tenant (2) gets a tight publish bucket on every node; the
    // co-tenant (1) is unquota'd and must never be affected.
    let hot_quota = Quota {
        publish_bytes_per_sec: 10.0,
        publish_burst_bytes: 100.0,
        ..Quota::unlimited()
    };
    for id in 0..n as NodeId {
        sim.with_node(id, |node, _| node.governor.set_quota(2, hot_quota));
    }

    // Standing scans: the co-tenant watches "CO", the hot tenant
    // watches "FLOOD". Installed before any publish, so every accepted
    // row must flow through incrementally.
    sim.with_node(0, |node, ctx| {
        node.try_submit(ctx, scan_query(11, 0, "CO", 1)).unwrap();
        node.try_submit(ctx, scan_query(22, 0, "FLOOD", 2)).unwrap();
    });
    sim.run_for(Dur::from_secs(5));

    // The flood: one huge burst from the hot tenant...
    let flood = rows(1000, 1400);
    let report = sim
        .with_node(2, |node, ctx| {
            node.publish_rows_from(ctx, 2, "FLOOD", flood, 0, lifetime())
        })
        .unwrap();
    assert!(
        report.shed > 300,
        "the bucket must shed most of a 400-row burst: {report:?}"
    );
    assert!(report.accepted >= 1, "burst allowance admits a few rows");
    assert_eq!(report.accepted + report.shed, 400);

    // ...interleaved with the co-tenant's modest publication.
    let co = rows(0, 50);
    let co_report = sim
        .with_node(1, |node, ctx| {
            node.publish_rows_from(ctx, 1, "CO", co, 0, lifetime())
        })
        .unwrap();
    assert_eq!(co_report.shed, 0, "an unquota'd co-tenant is never shed");
    assert_eq!(co_report.accepted, 50);
    sim.run_for(Dur::from_secs(30));

    // Co-tenant recall is 1.0: all 50 rows reached its standing query.
    let co_results = sim.node(0).unwrap().query_results(11);
    assert_eq!(
        co_results.len(),
        50,
        "co-tenant recall must be 1.0 under the flood"
    );
    // The hot tenant's accepted rows arrive; the shed ones never do.
    let hot_results = sim.node(0).unwrap().query_results(22);
    assert_eq!(hot_results.len(), report.accepted);

    // The observable surface agrees with the report.
    let snap = metrics_snapshot(&sim);
    assert_eq!(snap.shed_publishes(), report.shed as u64);
    let publisher = &snap.nodes[2].registry;
    assert_eq!(publisher.shed_publishes, report.shed as u64);
    assert!(publisher.shed_bytes > 0);
}

// ---------------------------------------------------------------------
// Snapshot vs NetStats ground truth
// ---------------------------------------------------------------------

#[test]
fn metrics_snapshot_matches_netstats_on_sim() {
    let wl = RsWorkload::generate(RsParams {
        s_rows: 15,
        seed: 77,
        ..Default::default()
    });
    let n = 6;
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(77));
    publish_round_robin(&mut sim, "R", &wl.r, 0, lifetime());
    publish_round_robin(&mut sim, "S", &wl.s, 0, lifetime());
    settle_publish(&mut sim);
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(60));
    assert!(same_multiset(
        &wl.expected(JoinStrategy::SymmetricHash),
        &rows_of(&results)
    ));

    let snap = metrics_snapshot(&sim);
    // Typed equality and byte-for-byte JSON equality against the
    // engine's own counters.
    assert_eq!(snap.net, sim.net_stats());
    assert_eq!(net_stats_json(&snap.net), net_stats_json(&sim.net_stats()));
    assert!(snap.to_json().contains(&net_stats_json(&sim.net_stats())));

    // The per-query surface saw the join: every node installed it, and
    // the registry's result counter covers the initiator's multiset.
    assert_eq!(snap.nodes.len(), n);
    for node in &snap.nodes {
        assert_eq!(node.registry.admitted_installs, 1, "node {}", node.node);
        assert_eq!(node.mailbox_depth, 0, "simulators have no mailboxes");
        assert!(!node.occupancy.is_empty(), "published base state is live");
    }
    assert_eq!(
        snap.total(|q| q.results_shipped),
        results.len() as u64,
        "results_shipped across nodes is the initiator's result count"
    );
    assert!(
        snap.total(|q| q.rehash_bytes) > 0,
        "the join rehashed state"
    );
}

#[test]
fn metrics_snapshot_matches_netstats_on_cluster() {
    let n = 4;
    let cfg = DhtConfig::static_network();
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<PierNode> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect();
    let cluster = Cluster::spawn(apps, 42);

    cluster.request(
        1,
        NodeRequest::PublishRows {
            table: "T".to_string(),
            rows: rows(0, 20),
            pkey_col: 0,
            lifetime: lifetime(),
        },
    );
    std::thread::sleep(std::time::Duration::from_millis(300));
    cluster.request(0, NodeRequest::Submit(Box::new(scan_query(7, 0, "T", 0))));

    // Wait until the wire goes quiet: result count stable.
    let mut last = 0;
    let mut stable = 0;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let c = cluster
            .request(0, NodeRequest::ResultCount(7))
            .expect("initiator alive")
            .into_count();
        if c == last && c > 0 {
            stable += 1;
            if stable > 10 {
                break;
            }
        } else {
            stable = 0;
        }
        last = c;
    }
    assert_eq!(last, 20, "the standing scan saw every published row");

    let snap = cluster_metrics_snapshot(&cluster);
    let truth = cluster.stats();
    assert_eq!(snap.net, truth, "snapshot == engine NetStats (typed)");
    assert_eq!(
        net_stats_json(&snap.net),
        net_stats_json(&truth),
        "snapshot == engine NetStats (byte-for-byte JSON)"
    );
    assert_eq!(snap.nodes.len(), n);
    for node in &snap.nodes {
        assert_eq!(node.registry.admitted_installs, 1);
        assert_eq!(
            node.mailbox_depth, 0,
            "a quiesced actor's mailbox is empty (node {})",
            node.node
        );
    }
    assert_eq!(snap.total(|q| q.results_shipped), 20);
    cluster.shutdown();
}

//! Cross-engine parity: the same seeded query must yield the *identical
//! result multiset* on the discrete-event simulator and on the threaded
//! wall-clock cluster. Both engines drive the same `PierNode` automaton,
//! so any divergence is an engine bug, not query-processor behavior.

use pier::qp::plan::JoinStrategy;
use pier::qp::semantics::same_multiset;
use pier::qp::testkit::*;
use pier::qp::{PierNode, Tuple};
use pier::simnet::threaded::Cluster;
use pier::simnet::time::{Dur, Time};
use pier::simnet::{NetConfig, NodeId};
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn workload() -> RsWorkload {
    RsWorkload::generate(RsParams {
        s_rows: 15,
        seed: 77,
        ..Default::default()
    })
}

/// Round-robin partitioning shared by both engines so each node holds
/// the same fragment under either engine.
fn fragments(rows: &[Tuple], n: usize) -> Vec<Vec<Tuple>> {
    let mut per_node: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    for (i, row) in rows.iter().enumerate() {
        per_node[i % n].push(row.clone());
    }
    per_node
}

fn run_on_sim(wl: &RsWorkload, n: usize) -> Vec<Tuple> {
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(77));
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    rows_of(&run_query(&mut sim, 0, desc, Dur::from_secs(60)))
}

fn run_on_cluster(wl: &RsWorkload, n: usize) -> Vec<Tuple> {
    let cfg = DhtConfig::static_network();
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<PierNode> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect();
    let cluster = Cluster::spawn(apps, 77);
    let r_frags = fragments(&wl.r, n);
    let s_frags = fragments(&wl.s, n);
    for (i, (r, s)) in r_frags.into_iter().zip(s_frags).enumerate() {
        cluster.call(i as NodeId, move |node, ctx| {
            node.publish_rows(ctx, "R", r, 0, Dur::from_secs(100_000));
            node.publish_rows(ctx, "S", s, 0, Dur::from_secs(100_000));
        });
    }
    std::thread::sleep(std::time::Duration::from_millis(400));
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    cluster.call(0, move |node, ctx| node.submit(ctx, desc));
    // Wait until the result count is stable for a while (wall clock).
    let mut last = 0;
    let mut stable = 0;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let c = cluster.call(0, |node, _| node.query_results(1).len());
        if c == last && c > 0 {
            stable += 1;
            if stable > 10 {
                break;
            }
        } else {
            stable = 0;
        }
        last = c;
    }
    let rows = cluster.call(0, |node, _| {
        node.query_results(1)
            .iter()
            .map(|(_, r)| r.clone())
            .collect::<Vec<_>>()
    });
    cluster.shutdown();
    rows
}

#[test]
fn sim_and_cluster_agree_on_the_workload_join() {
    let wl = workload();
    let n = 6;
    let expected = wl.expected(JoinStrategy::SymmetricHash);
    assert!(!expected.is_empty());
    let sim_rows = run_on_sim(&wl, n);
    let cluster_rows = run_on_cluster(&wl, n);
    // Each engine matches the centralized reference...
    assert!(
        same_multiset(&expected, &sim_rows),
        "sim vs reference: {} vs {}",
        sim_rows.len(),
        expected.len()
    );
    assert!(
        same_multiset(&expected, &cluster_rows),
        "cluster vs reference: {} vs {}",
        cluster_rows.len(),
        expected.len()
    );
    // ...and therefore each other: identical multisets across engines.
    assert!(same_multiset(&sim_rows, &cluster_rows));
}

//! Cross-engine parity: the same seeded query must yield the *identical
//! result multiset* on the discrete-event simulator and on the
//! wall-clock actor-runtime cluster. Both engines drive the same
//! `PierNode` automaton, so any divergence is an engine bug, not
//! query-processor behavior.

use pier::qp::plan::JoinStrategy;
use pier::qp::semantics::same_multiset;
use pier::qp::testkit::*;
use pier::qp::{NodeRequest, PierNode, Tuple};
use pier::simnet::time::{Dur, Time};
use pier::simnet::{
    App, Cluster, Ctx, Fault, FaultDriver, FaultScript, NetConfig, NodeId, Scheduled, Service,
    ShardMap, Sim, Wire,
};
use pier::workload::{RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn workload() -> RsWorkload {
    RsWorkload::generate(RsParams {
        s_rows: 15,
        seed: 77,
        ..Default::default()
    })
}

/// Round-robin partitioning shared by both engines so each node holds
/// the same fragment under either engine.
fn fragments(rows: &[Tuple], n: usize) -> Vec<Vec<Tuple>> {
    let mut per_node: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    for (i, row) in rows.iter().enumerate() {
        per_node[i % n].push(row.clone());
    }
    per_node
}

fn run_on_sim(wl: &RsWorkload, n: usize) -> Vec<Tuple> {
    let mut sim = stabilized_pier_sim(n, DhtConfig::static_network(), NetConfig::latency_only(77));
    publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
    publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
    settle_publish(&mut sim);
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    rows_of(&run_query(&mut sim, 0, desc, Dur::from_secs(60)))
}

fn run_on_cluster(wl: &RsWorkload, n: usize) -> Vec<Tuple> {
    let cfg = DhtConfig::static_network();
    let states = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO);
    let apps: Vec<PierNode> = states
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect();
    let cluster = Cluster::spawn(apps, 77);
    let r_frags = fragments(&wl.r, n);
    let s_frags = fragments(&wl.s, n);
    for (i, (r, s)) in r_frags.into_iter().zip(s_frags).enumerate() {
        for (table, rows) in [("R", r), ("S", s)] {
            cluster.request(
                i as NodeId,
                NodeRequest::PublishRows {
                    table: table.to_string(),
                    rows,
                    pkey_col: 0,
                    lifetime: Dur::from_secs(100_000),
                },
            );
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(400));
    let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
    cluster.request(0, NodeRequest::Submit(Box::new(desc)));
    // Wait until the result count is stable for a while (wall clock).
    let mut last = 0;
    let mut stable = 0;
    for _ in 0..200 {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let c = cluster
            .request(0, NodeRequest::ResultCount(1))
            .expect("initiator alive")
            .into_count();
        if c == last && c > 0 {
            stable += 1;
            if stable > 10 {
                break;
            }
        } else {
            stable = 0;
        }
        last = c;
    }
    let rows: Vec<Tuple> = cluster
        .request(0, NodeRequest::TimedResults(1))
        .expect("initiator alive")
        .into_timed_results()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    cluster.shutdown();
    rows
}

#[test]
fn sim_and_cluster_agree_on_the_workload_join() {
    let wl = workload();
    let n = 6;
    let expected = wl.expected(JoinStrategy::SymmetricHash);
    assert!(!expected.is_empty());
    let sim_rows = run_on_sim(&wl, n);
    let cluster_rows = run_on_cluster(&wl, n);
    // Each engine matches the centralized reference...
    assert!(
        same_multiset(&expected, &sim_rows),
        "sim vs reference: {} vs {}",
        sim_rows.len(),
        expected.len()
    );
    assert!(
        same_multiset(&expected, &cluster_rows),
        "cluster vs reference: {} vs {}",
        cluster_rows.len(),
        expected.len()
    );
    // ...and therefore each other: identical multisets across engines.
    assert!(same_multiset(&sim_rows, &cluster_rows));
}

/// Idle PIER nodes for fault-harness replay (no query traffic needed).
fn idle_nodes(n: usize) -> Vec<PierNode> {
    let cfg = DhtConfig::static_network();
    pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO)
        .into_iter()
        .enumerate()
        .map(|(i, st)| {
            PierNode::with_dht(pier_dht::Dht::with_can(cfg.clone(), i as NodeId, st), None)
        })
        .collect()
}

/// The same seeded fault script, replayed on the virtual-clock simulator
/// and on the wall-clock cluster, must leave byte-identical traces: the
/// trace records *script* time, so neither the engine's clock nor the
/// polling cadence shows through. This is what makes a churn experiment
/// reproducible across the paper's "same code, simulated or deployed"
/// split.
/// A replacement automaton for `id` — a fresh process at the same
/// address, used to execute [`Fault::Join`] on any engine.
fn replacement_node(id: NodeId, n: usize) -> PierNode {
    let cfg = DhtConfig::static_network();
    let st = pier_dht::can::balanced_overlay(n, cfg.dims, Time::ZERO)
        .into_iter()
        .nth(id as usize)
        .expect("id within overlay");
    PierNode::with_dht(pier_dht::Dht::with_can(cfg, id, st), None)
}

#[test]
fn fault_scripts_replay_identically_on_both_engines() {
    let candidates: Vec<NodeId> = (1..6).collect();
    // Kills with scheduled rejoins of replacement nodes, plus a drop
    // window — all three fault kinds replay on both engines.
    let script = FaultScript::churn_with_rejoin(
        4242,
        Dur::from_secs(2),
        3,
        &candidates,
        Dur::from_millis(450),
    )
    .with_drop_window(0, Dur::from_millis(300), Dur::from_millis(700));
    let killed = script.killed();
    assert_eq!(killed.len(), 3);
    assert_eq!(script.joined().len(), 3);

    // Simulator replay: run exactly up to each fault instant.
    let mut sim = stabilized_pier_sim(6, DhtConfig::static_network(), NetConfig::latency_only(1));
    let mut sim_drv = FaultDriver::new(script.clone());
    let t0 = sim.now();
    while let Some(at) = sim_drv.next_at() {
        sim.run_until(t0 + at);
        sim_drv.advance(sim.now().since(t0), |f| match *f {
            Fault::Kill { node } => sim.fail_node(node),
            Fault::DropStart { node } => sim.set_inbound_drop(node, true),
            Fault::DropEnd { node } => sim.set_inbound_drop(node, false),
            Fault::Join { node } => {
                assert!(sim.revive(node, replacement_node(node, 6)));
            }
        });
    }
    for &v in &killed {
        assert!(
            sim.alive(v),
            "node {v} must be back up after its Join fault"
        );
    }
    let sim_trace: Vec<Scheduled> = sim_drv.trace().to_vec();

    // Cluster replay: coarse wall-clock polling.
    let cluster = Cluster::spawn(idle_nodes(6), 1);
    let mut cluster_drv = FaultDriver::new(script);
    while !cluster_drv.finished() {
        std::thread::sleep(std::time::Duration::from_millis(20));
        cluster_drv.advance(cluster.now().since(Time::ZERO), |f| match *f {
            Fault::Kill { node } => cluster.kill(node),
            Fault::DropStart { node } => cluster.set_inbound_drop(node, true),
            Fault::DropEnd { node } => cluster.set_inbound_drop(node, false),
            Fault::Join { node } => {
                assert!(cluster.revive(node, replacement_node(node, 6)));
            }
        });
    }
    for &v in &killed {
        assert!(cluster.alive(v), "cluster node {v} rejoined");
    }
    cluster.shutdown();

    assert_eq!(
        sim_trace,
        cluster_drv.trace(),
        "identical seed + script must trace identically on both engines"
    );
}

/// A silent automaton: it never sends on its own, so in the parity test
/// below every counter movement is caused by an explicit probe.
struct Quiet;

#[derive(Clone, Debug)]
struct Probe;
impl Wire for Probe {
    fn wire_size(&self) -> usize {
        64
    }
}

impl App for Quiet {
    type Msg = Probe;
    fn on_start(&mut self, _ctx: &mut Ctx<Probe>) {}
    fn on_message(&mut self, _ctx: &mut Ctx<Probe>, _from: NodeId, _msg: Probe) {}
    fn on_timer(&mut self, _ctx: &mut Ctx<Probe>, _token: u64) {}
}

/// The one probe request: emit a `Probe` toward each destination, from
/// inside the actor loop — so the sends cross the transport exactly as
/// automaton traffic does.
impl Service for Quiet {
    type Req = Vec<NodeId>;
    type Resp = ();

    fn on_request(&mut self, ctx: &mut Ctx<Probe>, dsts: Vec<NodeId>) {
        for dst in dsts {
            ctx.send(dst, Probe);
        }
    }
}

/// Both engines must *classify* identical sends identically under the
/// same seeded `FaultScript`: a send to a live peer is traffic, a send
/// to a killed node is `dropped_to_failed`, a send into an open drop
/// window is `dropped_in_window`. Pre-fix, the Cluster counted
/// dead-node sends as `messages`/`bytes` (incremented before the
/// channel send) and had no `dropped_to_failed` bucket at all.
#[test]
fn stats_classify_identically_on_both_engines() {
    // One scripted kill of node 2, plus a drop window [300 ms, 700 ms)
    // on node 3. Probes: node 0 sends into the open window at script
    // time 500 ms, then to a live node and the dead node at the end.
    let script = FaultScript::churn(4242, Dur::from_secs(1), 1, &[2]).with_drop_window(
        3,
        Dur::from_millis(300),
        Dur::from_millis(400),
    );
    assert_eq!(script.killed(), vec![2]);
    let mid = Dur::from_millis(500);

    // --- Simulator replay.
    let mut sim: Sim<Quiet> = Sim::new(NetConfig::latency_only(7));
    for _ in 0..4 {
        sim.add_node(Quiet);
    }
    let mut drv = FaultDriver::new(script.clone());
    sim.run_until(Time::ZERO + mid);
    drv.advance(mid, |f| match *f {
        Fault::Kill { node } => sim.fail_node(node),
        Fault::DropStart { node } => sim.set_inbound_drop(node, true),
        Fault::DropEnd { node } => sim.set_inbound_drop(node, false),
        Fault::Join { .. } => unreachable!("script schedules no joins"),
    });
    sim.with_app(0, |_, ctx| ctx.send(3, Probe)).unwrap();
    while let Some(at) = drv.next_at() {
        sim.run_until(Time::ZERO + at);
        drv.advance(at, |f| match *f {
            Fault::Kill { node } => sim.fail_node(node),
            Fault::DropStart { node } => sim.set_inbound_drop(node, true),
            Fault::DropEnd { node } => sim.set_inbound_drop(node, false),
            Fault::Join { .. } => unreachable!("script schedules no joins"),
        });
    }
    sim.with_app(0, |_, ctx| {
        ctx.send(1, Probe);
        ctx.send(2, Probe);
    })
    .unwrap();
    sim.run_idle(100);
    let sim_counts = (
        sim.stats().messages,
        sim.stats().bytes,
        sim.stats().dropped_to_failed,
        sim.stats().dropped_in_window,
    );

    // --- Cluster replay: the driver is caller-clocked, so the same
    // script *stages* replay deterministically against the wall clock.
    let cluster = Cluster::spawn(vec![Quiet, Quiet, Quiet, Quiet], 7);
    let mut drv = FaultDriver::new(script);
    drv.advance(mid, |f| match *f {
        Fault::Kill { node } => cluster.kill(node),
        Fault::DropStart { node } => cluster.set_inbound_drop(node, true),
        Fault::DropEnd { node } => cluster.set_inbound_drop(node, false),
        Fault::Join { .. } => unreachable!("script schedules no joins"),
    });
    cluster.request(0, vec![3]).unwrap();
    // Sends flush on node 0's thread after the request returns: wait
    // for the window drop to be accounted before healing the window.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while cluster.stats().dropped_in_window < 1 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    while let Some(at) = drv.next_at() {
        drv.advance(at, |f| match *f {
            Fault::Kill { node } => cluster.kill(node),
            Fault::DropStart { node } => cluster.set_inbound_drop(node, true),
            Fault::DropEnd { node } => cluster.set_inbound_drop(node, false),
            Fault::Join { .. } => unreachable!("script schedules no joins"),
        });
    }
    cluster.request(0, vec![1, 2]).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while (cluster.stats().messages < 1 || cluster.stats().dropped_to_failed < 1)
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let stats = cluster.stats();
    let cluster_counts = (
        stats.messages,
        stats.bytes,
        stats.dropped_to_failed,
        stats.dropped_in_window,
    );
    cluster.shutdown();

    assert_eq!(sim_counts, (1, 64, 1, 1));
    assert_eq!(sim_counts, cluster_counts);
}

/// The sharded engine's determinism pin: one seeded churn-with-rejoin
/// script over a live query workload must produce **byte-identical**
/// stats, fault traces, and result rows under W ∈ {1, 2, 4} shards and
/// under the sequential `Sim`. This is the contract that lets the
/// scale-up benchmarks swap engines freely.
#[test]
fn churn_scripts_are_byte_identical_under_sharding() {
    const N: usize = 12;
    let wl = RsWorkload::generate(RsParams {
        s_rows: 12,
        seed: 99,
        ..Default::default()
    });
    let script = FaultScript::churn_with_rejoin(
        7,
        Dur::from_secs(40),
        3,
        &(1..N as NodeId).collect::<Vec<_>>(),
        Dur::from_secs(6),
    )
    .with_drop_window(0, Dur::from_secs(10), Dur::from_secs(5));

    // Drives the same scripted run on any engine; returns everything
    // observable: the fault trace, result rows, merged stats, the event
    // count, and the final clock.
    fn drive<E: PierEngine>(
        mut sim: E,
        wl: &RsWorkload,
        script: &FaultScript,
        fail: impl Fn(&mut E, NodeId),
        revive: impl Fn(&mut E, NodeId) -> bool,
        drop: impl Fn(&mut E, NodeId, bool),
    ) -> (Vec<Scheduled>, Vec<Tuple>, u64, u64, Vec<u64>, Time) {
        publish_round_robin(&mut sim, "R", &wl.r, 0, Dur::from_secs(100_000));
        publish_round_robin(&mut sim, "S", &wl.s, 0, Dur::from_secs(100_000));
        settle_publish(&mut sim);
        let desc = wl.query(1, 0, JoinStrategy::SymmetricHash);
        sim.with_node(0, |node, ctx| node.submit(ctx, desc));
        let mut drv = FaultDriver::new(script.clone());
        let t0 = sim.now();
        while let Some(at) = drv.next_at() {
            let target = t0 + at;
            sim.run_for(target.since(sim.now()));
            drv.advance(sim.now().since(t0), |f| match *f {
                Fault::Kill { node } => fail(&mut sim, node),
                Fault::DropStart { node } => drop(&mut sim, node, true),
                Fault::DropEnd { node } => drop(&mut sim, node, false),
                Fault::Join { node } => {
                    assert!(revive(&mut sim, node));
                }
            });
        }
        sim.run_for(Dur::from_secs(20));
        let rows = sim
            .node(0)
            .map(|n| {
                rows_of(
                    &n.query_results(1)
                        .iter()
                        .map(|(t, r)| (t.since(t0), r.clone()))
                        .collect::<Vec<_>>(),
                )
            })
            .unwrap_or_default();
        let stats = sim.net_stats();
        (
            drv.trace().to_vec(),
            rows,
            stats.messages,
            stats.bytes,
            stats.inbound_bytes.clone(),
            sim.now(),
        )
    }

    let cfg = DhtConfig::static_network();
    let seq = drive(
        stabilized_pier_sim(N, cfg.clone(), NetConfig::latency_only(5)),
        &wl,
        &script,
        |s, id| s.fail_node(id),
        |s, id| s.revive(id, replacement_node(id, N)),
        |s, id, on| s.set_inbound_drop(id, on),
    );
    assert!(!seq.1.is_empty(), "workload must produce results");

    for w in [1usize, 2, 4] {
        let sharded = drive(
            stabilized_pier_sharded(
                N,
                cfg.clone(),
                NetConfig::latency_only(5),
                ShardMap::round_robin(w),
            ),
            &wl,
            &script,
            |s, id| s.fail_node(id),
            |s, id| s.revive(id, replacement_node(id, N)),
            |s, id, on| s.set_inbound_drop(id, on),
        );
        assert_eq!(seq.0, sharded.0, "fault traces diverge at W={w}");
        assert_eq!(seq.1, sharded.1, "result rows diverge at W={w}");
        assert_eq!(seq.2, sharded.2, "message counts diverge at W={w}");
        assert_eq!(seq.3, sharded.3, "byte counts diverge at W={w}");
        assert_eq!(seq.4, sharded.4, "inbound bytes diverge at W={w}");
        assert_eq!(seq.5, sharded.5, "clocks diverge at W={w}");
    }
}

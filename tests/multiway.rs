//! End-to-end multi-way join pipelines: N-table SQL queries executed on
//! simulated overlays and checked against the centralized reference
//! evaluator by multiset equality.

use pier::qp::plan::QueryDesc;
use pier::qp::semantics::{reference_eval, same_multiset};
use pier::qp::testkit::*;
use pier::qp::{
    parse_query, plan_sql, Catalog, CostParams, JoinStrategy, Objective, QueryOp, TableStats,
};
use pier::simnet::time::Dur;
use pier::simnet::NetConfig;
use pier::workload::{intrusion, RsParams, RsWorkload};
use pier_dht::DhtConfig;

fn small_workload(seed: u64) -> RsWorkload {
    RsWorkload::generate(RsParams {
        s_rows: 30,
        t_rows: 50,
        seed,
        ..Default::default()
    })
}

fn publish_rst(sim: &mut pier::simnet::Sim<pier::qp::PierNode>, wl: &RsWorkload) {
    let life = Dur::from_secs(100_000);
    publish_round_robin(sim, "R", &wl.r, 0, life);
    publish_round_robin(sim, "S", &wl.s, 0, life);
    publish_round_robin(sim, "T", &wl.t, 0, life);
    settle_publish(sim);
}

/// The acceptance query: a 3-table SQL join parsed, multicast, executed
/// as a chained symmetric-hash pipeline, and compared to the reference.
#[test]
fn three_table_sql_join_end_to_end() {
    let wl = small_workload(21);
    let catalog = Catalog::workload();
    let op = parse_query(
        "SELECT R.pkey, S.pkey, T.pkey FROM R, S, T \
         WHERE R.num1 = S.pkey AND S.num3 = T.pkey",
        &catalog,
        JoinStrategy::SymmetricHash,
    )
    .unwrap();
    let expected = reference_eval(&op, &wl.tables());
    assert!(!expected.is_empty(), "workload produces 3-way matches");

    let mut sim = stabilized_pier_sim(12, DhtConfig::static_network(), NetConfig::latency_only(21));
    publish_rst(&mut sim, &wl);
    let desc = QueryDesc::one_shot(1, 0, op);
    let results = run_query(&mut sim, 0, desc, Dur::from_secs(90));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

/// The full 3-way workload query (predicates on R, T, and a cross-table
/// f() evaluated mid-pipeline), hand-built rather than parsed.
#[test]
fn workload_multiway_query_matches_reference() {
    let wl = small_workload(22);
    let expected = wl.expected_multi();
    assert!(!expected.is_empty());
    let mut sim = stabilized_pier_sim(10, DhtConfig::static_network(), NetConfig::latency_only(22));
    publish_rst(&mut sim, &wl);
    let results = run_query(&mut sim, 3, wl.multi_query(7, 3), Dur::from_secs(90));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

/// The cost-based planner reorders the pipeline (T is smallest, so it
/// becomes the base); the reordered plan still matches its reference.
#[test]
fn planner_ordered_pipeline_end_to_end() {
    let wl = small_workload(23);
    let mut catalog = Catalog::workload();
    for (name, rows, bytes) in [
        ("R", wl.r.len(), 1024),
        ("S", wl.s.len(), 100),
        ("T", wl.t.len(), 100),
    ] {
        catalog.set_stats(
            name,
            TableStats {
                rows: rows as u64,
                avg_tuple_bytes: bytes,
            },
        );
    }
    let op = plan_sql(
        "SELECT R.pkey, S.pkey, T.pkey FROM R, S, T \
         WHERE R.num1 = S.pkey AND S.num3 = T.pkey",
        &catalog,
        &CostParams::paper_baseline(10.0),
        Objective::Traffic,
    )
    .unwrap();
    let QueryOp::MultiJoin(m) = &op else {
        panic!("expected a pipeline")
    };
    assert_eq!(
        m.base.table, "S",
        "greedy order starts at the smallest table"
    );
    assert_eq!(
        m.stages.last().unwrap().right.table,
        "R",
        "the wide, expensive table joins last"
    );

    let expected = reference_eval(&op, &wl.tables());
    assert!(!expected.is_empty());
    let mut sim = stabilized_pier_sim(10, DhtConfig::static_network(), NetConfig::latency_only(23));
    publish_rst(&mut sim, &wl);
    let desc = QueryDesc::one_shot(9, 2, op);
    let results = run_query(&mut sim, 2, desc, Dur::from_secs(90));
    assert!(same_multiset(&expected, &rows_of(&results)));
}

/// The §2.1-flavoured 3-way star: intrusion reports joined with
/// advisories and reporter reputations.
#[test]
fn intrusion_star_query_end_to_end() {
    let reports = intrusion::intrusions(60, 12, 30, 31);
    let advisories = intrusion::advisories(12, 31);
    let reputations = intrusion::reputations(30, 31);
    let catalog = Catalog::intrusion();
    let op = parse_query(
        "SELECT I.address, A.severity, R.weight \
         FROM intrusions I, advisories A, reputation R \
         WHERE I.fingerprint = A.fingerprint AND I.address = R.address \
         AND A.severity > 4",
        &catalog,
        JoinStrategy::SymmetricHash,
    )
    .unwrap();
    let mut tables = std::collections::HashMap::new();
    tables.insert("intrusions".to_string(), reports.clone());
    tables.insert("advisories".to_string(), advisories.clone());
    tables.insert("reputation".to_string(), reputations.clone());
    let expected = reference_eval(&op, &tables);
    assert!(!expected.is_empty(), "star query has answers");

    let mut sim = stabilized_pier_sim(8, DhtConfig::static_network(), NetConfig::latency_only(31));
    let life = Dur::from_secs(100_000);
    publish_round_robin(&mut sim, "intrusions", &reports, 0, life);
    publish_round_robin(&mut sim, "advisories", &advisories, 0, life);
    publish_round_robin(&mut sim, "reputation", &reputations, 0, life);
    settle_publish(&mut sim);
    let desc = QueryDesc::one_shot(4, 1, op);
    let results = run_query(&mut sim, 1, desc, Dur::from_secs(90));
    assert!(
        same_multiset(&expected, &rows_of(&results)),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

/// Windowed pipelines must not resurrect aged-out state: a stage
/// intermediate lives only as long as its shortest-lived constituent,
/// so a T partner arriving after R's window has closed joins nothing —
/// while the same dance entirely inside the window produces results.
#[test]
fn windowed_pipeline_caps_intermediate_lifetime() {
    let wl = small_workload(25);
    let window = Dur::from_secs(30);
    let life = Dur::from_secs(100_000);
    let run_phase = |qid: u64, s_delay: u64, t_delay: u64, tail: u64| -> usize {
        let mut sim = stabilized_pier_sim(
            10,
            DhtConfig::static_network(),
            NetConfig::latency_only(qid),
        );
        publish_round_robin(&mut sim, "R", &wl.r, 0, life);
        settle_publish(&mut sim);
        let mut desc = wl.multi_query(qid, 0);
        desc.continuous = true;
        desc.window = Some(window);
        sim.with_app(0, |node, ctx| node.submit(ctx, desc));
        sim.run_for(Dur::from_secs(s_delay));
        publish_round_robin(&mut sim, "S", &wl.s, 0, life);
        sim.run_for(Dur::from_secs(t_delay - s_delay));
        publish_round_robin(&mut sim, "T", &wl.t, 0, life);
        sim.run_for(Dur::from_secs(tail));
        sim.app(0).unwrap().query_results(qid).len()
    };
    // Control: S at +5, T at +10 — everything inside the 30 s window.
    let in_window = run_phase(8, 5, 10, 20);
    assert!(in_window > 0, "in-window pipeline produces results");
    // S at +25 forms R++S intermediates whose R constituent expires at
    // +30; T only arrives at +45. A window-restarting intermediate
    // would still be alive — the capped one is not.
    let after_window = run_phase(9, 25, 45, 30);
    assert_eq!(
        after_window, 0,
        "no results may join state that left the window"
    );
}

/// Continuous pipelines: base tuples published *after* installation flow
/// through every stage incrementally (intermediates are soft state).
#[test]
fn continuous_multiway_picks_up_late_tuples() {
    let wl = small_workload(24);
    // Split R: first half published up front, second half mid-query.
    let half = wl.r.len() / 2;
    let (early, late) = wl.r.split_at(half);

    let mut sim = stabilized_pier_sim(10, DhtConfig::static_network(), NetConfig::latency_only(24));
    let life = Dur::from_secs(100_000);
    publish_round_robin(&mut sim, "R", early, 0, life);
    publish_round_robin(&mut sim, "S", &wl.s, 0, life);
    publish_round_robin(&mut sim, "T", &wl.t, 0, life);
    settle_publish(&mut sim);

    let mut desc = wl.multi_query(5, 0);
    desc.continuous = true;
    sim.with_app(0, |node, ctx| node.submit(ctx, desc));
    sim.run_for(Dur::from_secs(60));
    let mid = sim.app(0).unwrap().query_results(5).len();

    publish_round_robin(&mut sim, "R", late, 0, life);
    sim.run_for(Dur::from_secs(60));
    let results: Vec<_> = sim
        .app(0)
        .unwrap()
        .query_results(5)
        .iter()
        .map(|(_, r)| r.clone())
        .collect();
    let expected = wl.expected_multi();
    assert!(
        results.len() > mid,
        "late tuples produced incremental results ({mid} -> {})",
        results.len()
    );
    assert!(
        same_multiset(&expected, &results),
        "expected {} got {}",
        expected.len(),
        results.len()
    );
}

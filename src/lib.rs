//! # PIER — Peer-to-Peer Information Exchange and Retrieval
//!
//! A reproduction of *"Querying the Internet with PIER"* (Huebsch,
//! Hellerstein, Lanham, Loo, Shenker, Stoica — VLDB 2003): a relational
//! query engine that scales to thousands of nodes by running over a
//! distributed hash table.
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! * [`simnet`] — network engines: the deterministic simulators and the
//!   actor-runtime cluster behind a pluggable transport.
//! * [`dht`] — CAN and Chord overlays, storage manager, provider,
//!   content-based multicast, soft state.
//! * [`qp`] — the PIER query processor: tuples, expressions, the
//!   push-based dataflow engine, four distributed join strategies,
//!   aggregation, SQL parsing, and the cost-based strategy optimizer.
//! * [`workload`] — synthetic data generators for the paper's evaluation.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, the repository
//! [README](../../../README.md) for the architecture overview and the
//! experiment-binary index, and [DESIGN.md](../../../DESIGN.md) for the
//! complete system inventory and the paper-section → module map.

pub use pier_core as qp;
pub use pier_dht as dht;
pub use pier_simnet as simnet;
pub use pier_workload as workload;

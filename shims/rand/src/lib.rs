//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The PIER workspace must build with no network access, so this shim
//! vendors the small slice of the rand 0.8 API the code base uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets — so quality
//! is adequate for simulation workloads, and determinism from a seed is
//! preserved (though exact streams differ from the real crate).
//!
//! Integer `gen_range` uses simple modulo reduction; the bias is
//! negligible for the narrow ranges PIER draws from (spans far below
//! 2^32 against a 64-bit word).

/// A source of 64-bit randomness.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    // $u is the same-width unsigned type: a signed span must pass
    // through it before widening to u64, or the wrapped difference
    // sign-extends and the modulo stops bounding the sample.
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == <$u>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type over its full value space.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open (or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state is the one degenerate case for xoshiro.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let u = rng.gen_range(0..5usize);
            assert!(u < 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn narrow_signed_ranges_stay_in_bounds() {
        // A signed span wider than the type's MAX must not sign-extend
        // when widened for the modulo (regression: i8 span 200 → -56 →
        // huge u64 → unbounded samples).
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "out of range: {x}");
            let y = rng.gen_range(-100i8..=100);
            assert!((-100..=100).contains(&y), "out of range: {y}");
            let z = rng.gen_range(i8::MIN..=i8::MAX);
            let _ = z; // full-width inclusive range must not panic
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}

//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, covering only [`channel`] as used by `pier_simnet::threaded`.
//!
//! Backed by `std::sync::mpsc` (itself a crossbeam-derived queue since
//! Rust 1.72), wrapped so that bounded and unbounded channels share one
//! [`channel::Sender`] type the way crossbeam's do.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// Sending half of a channel; clonable and usable from any thread.
    pub struct Sender<T>(SenderKind<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Fails only when the receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Unbounded(tx) => tx.send(msg),
                SenderKind::Bounded(tx) => tx.send(msg),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }

    /// Channel buffering at most `cap` messages (`0` = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_round_trip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        h.join().unwrap();
    }

    #[test]
    fn bounded_rendezvous_passes_value() {
        let (tx, rx) = bounded::<&'static str>(1);
        tx.send("hi").unwrap();
        assert_eq!(rx.recv().unwrap(), "hi");
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! Supports the subset PIER's tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `arg in strategy` bindings,
//! range and [`any`] strategies, `prop::collection::vec`,
//! `prop::option::of`, and the `prop_assert*` macros.
//!
//! Unlike the real crate this shim does **not** shrink failing inputs —
//! it simply reruns each property over `cases` deterministic pseudo-random
//! samples (seeded per case index), and assertion macros panic like their
//! `std` counterparts. That keeps failures reproducible without any
//! persistence files or external dependencies beyond the vendored
//! [`rand`] shim.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration: how many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one case: seeded from the case index so every run of the
    /// suite samples identical inputs.
    pub fn for_case(case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            0x5EED_7E57 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// Types with a full-value-space uniform generator, for [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<u64>() & 1 == 1
    }
}

/// Strategy drawing uniformly from a type's whole value space.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-value-space strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        /// Vectors of `elem` samples with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.rng().gen_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Option strategies (`prop::option::of`).
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        pub struct OptionStrategy<S>(S);

        /// `None` in one case out of four, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                if rng.rng().gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(case as u64);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3usize..9, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u64>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u32..10)) {
            if let Some(x) = o {
                prop_assert!(x < 10);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the surface PIER's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a deliberately simple measurement
//! loop: each benchmark is warmed up once, then timed over `sample_size`
//! batches, reporting the median batch's mean ns/iteration to stdout.
//! There are no plots, no statistics beyond the median, and no saved
//! baselines; the point is that `cargo bench` runs and prints comparable
//! numbers without network access.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmarked
/// work. Forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    batch_iters: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` over `sample_size` batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim for batches of at
        // least ~10ms so Instant overhead is negligible, capped to keep
        // total runtime bounded.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(10);
        self.batch_iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.batch_iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() || self.batch_iters == 0 {
            return f64::NAN;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] as f64 / self.batch_iters as f64
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print its median timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            batch_iters: 0,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let per = b.median_ns_per_iter();
        if per.is_nan() {
            println!("{id:<40} (no measurement: Bencher::iter never called)");
        } else if per >= 1e6 {
            println!("{id:<40} {:>12.3} ms/iter", per / 1e6);
        } else if per >= 1e3 {
            println!("{id:<40} {:>12.3} us/iter", per / 1e3);
        } else {
            println!("{id:<40} {per:>12.1} ns/iter");
        }
        self
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// `name = ...; config = ...; targets = ...` form and the positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group, replacing criterion's CLI `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    );

    #[test]
    fn group_runs_and_measures() {
        benches();
    }

    #[test]
    fn positional_group_form_compiles() {
        criterion_group!(quick, sample_bench);
        quick();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}
